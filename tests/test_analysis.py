"""Tests for the analysis layer: surfaces, reports, comparisons."""

import pytest

from repro.analysis.compare import PolicyComparison, PolicyOutcome
from repro.analysis.report import (
    format_curve,
    format_curve_family,
    format_surface,
    format_table,
)
from repro.analysis.surface import PercentileSurface
from repro.errors import AnalysisError
from repro.loc.analyzer import analyze_trace

from conftest import make_event


def dist_of(values, mode="below", low=0, high=10, step=1):
    events = [make_event("e", cycle=v) for v in values]
    return analyze_trace(f"cycle(e[i]) {mode} <{low}, {high}, {step}>", events)


class TestPercentileSurface:
    def _filled(self):
        surface = PercentileSurface([800, 1000], [20_000, 40_000], level=0.8)
        surface.add(800, 20_000, dist_of([1, 2, 3, 4, 5]))
        surface.add(800, 40_000, dist_of([2, 3, 4, 5, 6]))
        surface.add(1000, 20_000, dist_of([5, 6, 7, 8, 9]))
        surface.add(1000, 40_000, dist_of([0, 1, 1, 2, 2]))
        return surface

    def test_grid_values(self):
        surface = self._filled()
        assert surface.is_complete()
        grid = surface.grid()
        # 80th percentile of {1..5} at integer edges is 4.
        assert grid[0][0] == 4
        assert grid[1][0] == 8

    def test_argmin_argmax(self):
        surface = self._filled()
        row, col, value = surface.argmin()
        assert (row, col, value) == (1000, 40_000, 2)
        row, col, value = surface.argmax()
        assert (row, col, value) == (1000, 20_000, 8)

    def test_off_axis_rejected(self):
        surface = PercentileSurface([1], [2])
        with pytest.raises(AnalysisError):
            surface.add(9, 2, dist_of([1]))

    def test_missing_cell_rejected(self):
        surface = PercentileSurface([1], [2])
        assert not surface.is_complete()
        with pytest.raises(AnalysisError):
            surface.value_at(1, 2)

    def test_bad_level_rejected(self):
        with pytest.raises(AnalysisError):
            PercentileSurface([1], [2], level=0.0)


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table(("a", "bb"), [(1, 22), (333, 4)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_width_mismatch(self):
        with pytest.raises(AnalysisError):
            format_table(("a",), [(1, 2)])

    def test_format_curve_thins_rows(self):
        points = [(float(k), k / 100.0) for k in range(100)]
        text = format_curve(points, max_rows=10)
        assert len(text.splitlines()) == 12  # header + divider + 10 rows

    def test_format_curve_family_shared_axis(self):
        a = [(0.0, 0.1), (1.0, 0.5)]
        b = [(0.0, 0.2), (1.0, 0.9)]
        text = format_curve_family([("20K", a), ("noDVS", b)], x_label="W")
        assert "20K" in text and "noDVS" in text

    def test_format_curve_family_mismatched_axis_rejected(self):
        a = [(0.0, 0.1)]
        b = [(5.0, 0.2)]
        with pytest.raises(AnalysisError):
            format_curve_family([("a", a), ("b", b)])

    def test_format_surface(self):
        text = format_surface([1, 2], [10, 20], [[0.5, 0.6], [0.7, 0.8]],
                              row_label="thr", col_label="win")
        assert "thr \\ win" in text
        assert "0.5" in text and "0.8" in text


class TestPolicyComparison:
    def _filled(self):
        comparison = PolicyComparison(["ipfwdr"], ["low", "high"])
        for level, base, edvs, tdvs in (
            ("low", 1.5, 1.5, 0.8),
            ("high", 1.3, 1.1, 1.0),
        ):
            comparison.add("ipfwdr", level,
                           PolicyOutcome("none", base, 1000.0, 0.0))
            comparison.add("ipfwdr", level,
                           PolicyOutcome("edvs", edvs, 995.0, 0.005))
            comparison.add("ipfwdr", level,
                           PolicyOutcome("tdvs", tdvs, 970.0, 0.03))
        return comparison

    def test_power_saving(self):
        comparison = self._filled()
        assert comparison.power_saving("ipfwdr", "low", "tdvs") == pytest.approx(
            1 - 0.8 / 1.5
        )
        assert comparison.power_saving("ipfwdr", "low", "edvs") == pytest.approx(0.0)

    def test_savings_by_level_ordering(self):
        comparison = self._filled()
        tdvs = comparison.tdvs_savings_by_level("ipfwdr")
        assert tdvs[0] > tdvs[1]  # TDVS savings shrink with traffic

    def test_throughput_delta(self):
        comparison = self._filled()
        assert comparison.throughput_delta("ipfwdr", "low", "tdvs") == pytest.approx(
            -0.03
        )

    def test_render_contains_all_cells(self):
        text = self._filled().render()
        assert "ipfwdr" in text
        assert "low" in text and "high" in text
        assert "%" in text

    def test_missing_outcome_rejected(self):
        comparison = PolicyComparison(["ipfwdr"], ["low"])
        with pytest.raises(AnalysisError):
            comparison.outcome("ipfwdr", "low", "none")

    def test_unknown_policy_rejected(self):
        comparison = PolicyComparison(["ipfwdr"], ["low"])
        with pytest.raises(AnalysisError):
            comparison.add("ipfwdr", "low", PolicyOutcome("magic", 1.0, 1.0, 0.0))


# ---------------------------------------------------------------------------
# Static invariant checker (repro lint)
# ---------------------------------------------------------------------------

import json as _json
from pathlib import Path

from repro.analysis.lint import (
    ModuleCache,
    build_channel_registry,
    check_determinism,
    check_wire,
    classify_formula,
    render,
    run_lint,
)
from repro.analysis.lint.channels import ChannelRegistry
from repro.analysis.lint.formulas import analyze_bounds, check_events
from repro.cli import main as cli_main
from repro.loc.builtin import (
    forwarding_latency_formula,
    power_distribution_formula,
    throughput_distribution_formula,
)
from repro.loc.monitor import build_monitor
from repro.scenarios import get_scenario, list_scenarios
from repro.studies.spec import StudySpec

REPO_ROOT = Path(__file__).resolve().parent.parent


def write_tree(root, files):
    """Create a minimal src/repro fixture tree: {relpath: source}."""
    for rel, source in files.items():
        path = root / "src" / "repro" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return root


def det_codes(root, files):
    write_tree(root, files)
    cache = ModuleCache(root)
    return [(f.code, f.suppressed) for f in check_determinism(cache)]


class TestDeterminismRules:
    def test_det101_unseeded_random_bad_and_clean(self, tmp_path):
        bad = det_codes(tmp_path, {
            "sim/thing.py": "import random\nx = random.randint(0, 3)\n",
        })
        assert ("DET101", False) in bad
        clean = det_codes(tmp_path / "c", {
            "sim/thing.py": "import random\nrng = random.Random(42)\nx = rng.randint(0, 3)\n",
        })
        assert all(code != "DET101" for code, _ in clean)

    def test_det101_numpy_and_from_import(self, tmp_path):
        bad = det_codes(tmp_path, {
            "sim/a.py": "import numpy as np\nv = np.random.uniform()\n",
            "sim/b.py": "from random import shuffle\n",
        })
        assert sum(1 for code, _ in bad if code == "DET101") == 2

    def test_det101_rng_module_exempt(self, tmp_path):
        clean = det_codes(tmp_path, {
            "sim/rng.py": "import random\nseeded = random.Random\n",
        })
        assert clean == []

    def test_det102_wall_clock_bad_clean_and_allowlist(self, tmp_path):
        bad = det_codes(tmp_path, {
            "sim/clocked.py": "import time\nstamp = time.time()\n",
        })
        assert ("DET102", False) in bad
        clean = det_codes(tmp_path / "c", {
            "sim/clocked.py": "import time\ndelay = time.sleep\n",
        })
        assert all(code != "DET102" for code, _ in clean)
        allow = det_codes(tmp_path / "a", {
            "backends/local.py": "import time\nstamp = time.perf_counter()\n",
        })
        assert all(code != "DET102" for code, _ in allow)

    def test_det103_set_iteration_bad_and_sorted_clean(self, tmp_path):
        bad = det_codes(tmp_path, {
            "npu/pool.py": (
                "def drain(items):\n"
                "    live = set(items)\n"
                "    out = []\n"
                "    for item in live:\n"
                "        out.append(item)\n"
                "    return out\n"
            ),
        })
        assert ("DET103", False) in bad
        clean = det_codes(tmp_path / "c", {
            "npu/pool.py": (
                "def drain(items):\n"
                "    live = set(items)\n"
                "    out = []\n"
                "    for item in sorted(live):\n"
                "        out.append(item)\n"
                "    return out\n"
            ),
        })
        assert all(code != "DET103" for code, _ in clean)

    def test_det103_dict_view_feeding_json(self, tmp_path):
        bad = det_codes(tmp_path, {
            "obs/dump.py": (
                "import json\n"
                "def dump(table, fh):\n"
                "    for key, value in table.items():\n"
                "        fh.write(json.dumps([key, value]))\n"
            ),
        })
        assert ("DET103", False) in bad
        clean = det_codes(tmp_path / "c", {
            "obs/dump.py": (
                "import json\n"
                "def dump(table, fh):\n"
                "    for key, value in sorted(table.items()):\n"
                "        fh.write(json.dumps([key, value]))\n"
            ),
        })
        assert all(code != "DET103" for code, _ in clean)

    def test_det104_float_accumulation_bad_and_clean(self, tmp_path):
        bad = det_codes(tmp_path, {
            "sweep/acc.py": (
                "def total(values):\n"
                "    pending = set(values)\n"
                "    acc = 0.0\n"
                "    for v in pending:\n"
                "        acc += v\n"
                "    return acc\n"
            ),
        })
        assert ("DET104", False) in bad
        clean = det_codes(tmp_path / "c", {
            "sweep/acc.py": (
                "def total(values):\n"
                "    acc = 0.0\n"
                "    for v in sorted(set(values)):\n"
                "        acc += v\n"
                "    return acc\n"
            ),
        })
        assert all(code != "DET104" for code, _ in clean)

    def test_det104_sum_over_set(self, tmp_path):
        bad = det_codes(tmp_path, {
            "sweep/acc.py": "def total(values):\n    return sum(set(values))\n",
        })
        assert ("DET104", False) in bad

    def test_det105_id_ordering_bad_and_clean(self, tmp_path):
        bad = det_codes(tmp_path, {
            "trace/order.py": (
                "def key_of(handlers):\n"
                "    return sorted(handlers, key=id)\n"
            ),
        })
        # ``key=id`` is a bare Name, not a call; use an id() call form.
        bad = det_codes(tmp_path / "b", {
            "trace/order.py": (
                "def key_of(handler):\n"
                "    return id(handler)\n"
            ),
        })
        assert ("DET105", False) in bad
        clean = det_codes(tmp_path / "c", {
            "trace/order.py": (
                "def key_of(handler):\n"
                "    return handler.name\n"
            ),
        })
        assert all(code != "DET105" for code, _ in clean)

    def test_det100_syntax_error(self, tmp_path):
        bad = det_codes(tmp_path, {"sim/broken.py": "def nope(:\n"})
        assert ("DET100", False) in bad

    def test_det106_env_read_in_model_core(self, tmp_path):
        # Literal, constant-indirected, os.getenv and subscript forms
        # all resolve; every undeclared variable is one finding.
        bad = det_codes(tmp_path, {
            "npu/engine.py": (
                "import os\n"
                'VAR = "REPRO_MYSTERY"\n'
                'a = os.environ.get("REPRO_UNDECLARED", "")\n'
                "b = os.environ.get(VAR)\n"
                'c = os.getenv("REPRO_THIRD")\n'
                'd = os.environ["REPRO_FOURTH"]\n'
            ),
        })
        assert sum(1 for code, _ in bad if code == "DET106") == 4

    def test_det106_allowlisted_toggle_clean(self, tmp_path):
        clean = det_codes(tmp_path, {
            "npu/engine.py": (
                "import os\n"
                'FUSE_ENV_VAR = "REPRO_FUSE"\n'
                'on = os.environ.get(FUSE_ENV_VAR, "").strip().lower()\n'
            ),
        })
        assert all(code != "DET106" for code, _ in clean)

    def test_det106_out_of_scope_layers_clean(self, tmp_path):
        # Observability/orchestration layers read mode env vars by
        # design; DET106 covers only the model core (sim/, npu/).
        clean = det_codes(tmp_path, {
            "obs/mode.py": 'import os\nv = os.environ.get("REPRO_ANY")\n',
            "sweep/workers.py": 'import os\nw = os.getenv("REPRO_OTHER")\n',
        })
        assert all(code != "DET106" for code, _ in clean)

    def test_concurrent_futures_wait_unpack_is_set_typed(self, tmp_path):
        bad = det_codes(tmp_path, {
            "sweep/drain.py": (
                "from concurrent.futures import wait\n"
                "def drain(futures):\n"
                "    out = []\n"
                "    while futures:\n"
                "        done, futures = wait(futures)\n"
                "        for f in done:\n"
                "            out.append(f.result())\n"
                "    return out\n"
            ),
        })
        assert ("DET103", False) in bad


class TestSuppressions:
    def test_noqa_with_code_suppresses(self, tmp_path):
        found = det_codes(tmp_path, {
            "sim/clocked.py": (
                "import time\n"
                "stamp = time.time()  # repro: noqa(DET102)\n"
            ),
        })
        assert ("DET102", True) in found
        assert ("DET102", False) not in found

    def test_bare_noqa_suppresses_all(self, tmp_path):
        found = det_codes(tmp_path, {
            "sim/clocked.py": (
                "import time\n"
                "stamp = time.time()  # repro: noqa\n"
            ),
        })
        assert ("DET102", True) in found

    def test_noqa_with_other_code_does_not_suppress(self, tmp_path):
        found = det_codes(tmp_path, {
            "sim/clocked.py": (
                "import time\n"
                "stamp = time.time()  # repro: noqa(DET101)\n"
            ),
        })
        assert ("DET102", False) in found

    def test_noqa_inside_string_literal_is_inert(self, tmp_path):
        found = det_codes(tmp_path, {
            "sim/clocked.py": (
                "import time\n"
                'docs = "# repro: noqa(DET102)"\n'
                "stamp = time.time()\n"
            ),
        })
        assert ("DET102", False) in found



def loose_registry():
    registry = ChannelRegistry()
    registry.exact.update({"forward", "arrival", "fifo", "mem_ixbus"})
    registry.prefixes.update({"mem_*", "m<k>_pipeline"})
    return registry


class TestLocRules:
    def test_loc201_classification_bad_and_clean(self):
        multi = classify_formula("time(deq[i]) - time(enq[i]) <= 5")
        assert not multi.compiled
        assert "multi-event" in multi.fallback_reason
        pinned = classify_formula("time(forward[i]) - time(forward[0]) <= 5")
        assert not pinned.compiled
        assert "absolute" in pinned.fallback_reason
        clean = classify_formula("time(forward[i+1]) - time(forward[i]) <= 5")
        assert clean.compiled and clean.event == "forward"

    def test_loc202_unsatisfiable_and_vacuous_bounds(self):
        unsat = analyze_bounds("time(forward[i+10]) - time(forward[i]) <= -1")
        assert any(f.code == "LOC202" and "unsatisfiable" in f.message
                   for f in unsat)
        vacuous = analyze_bounds("time(forward[i+10]) - time(forward[i]) >= 0")
        assert any(f.code == "LOC202" and "vacuous" in f.message
                   for f in vacuous)
        const = analyze_bounds("3 <= 2")
        assert any(f.code == "LOC202" for f in const)
        # The parser refuses degenerate triples, but AST-built formulas
        # bypass it — the analyzer must still catch them.
        from repro.loc.ast_nodes import DistributionFormula
        from repro.loc.parser import parse_formula
        expr = parse_formula("cycle(forward[i]) in <0, 10, 1>").expr
        degenerate = analyze_bounds(
            DistributionFormula(expr, "in", 10.0, 5.0, 1.0)
        )
        assert any(f.code == "LOC202" for f in degenerate)
        clean = analyze_bounds(
            "time(forward[i+10]) - time(forward[i]) <= 120"
        )
        assert clean == []

    def test_loc202_flipped_sides(self):
        unsat = analyze_bounds("-2 >= time(forward[i+5]) - time(forward[i])")
        assert any(f.code == "LOC202" and "unsatisfiable" in f.message
                   for f in unsat)

    def test_loc203_unknown_event_bad_and_clean(self):
        registry = loose_registry()
        bad = check_events("cycle(fwd[i+1]) - cycle(fwd[i]) <= 10", registry)
        assert any(f.code == "LOC203" for f in bad)
        for name in ("forward", "mem_sram", "m3_pipeline", "fifo"):
            clean = check_events(
                f"cycle({name}[i+1]) - cycle({name}[i]) <= 10", registry
            )
            assert clean == [], name

    def test_loc204_parse_error(self):
        registry = loose_registry()
        bad = check_events("cycle(forward[i+1]) - - <= ", registry)
        assert any(f.code == "LOC204" for f in bad)
        assert classify_formula("what is this").kind == "invalid"

    def test_registry_extraction_from_fixture_emitters(self, tmp_path):
        write_tree(tmp_path, {
            "npu/chip.py": (
                "def wire(bus, resource, me_index):\n"
                "    fwd = bus.emitter('forward')\n"
                "    arr = bus.emitter('arrival', to_sinks=False)\n"
                "    resource.bind_trace(bus, f'mem_{resource.name}')\n"
                "    pipe = bus.emitter(prefixed_event_name('pipeline', me_index))\n"
            ),
        })
        registry = build_channel_registry(ModuleCache(tmp_path))
        assert registry.knows("forward")
        assert registry.knows("arrival")
        assert registry.knows("mem_sdram")
        assert registry.knows("m7_pipeline")
        assert not registry.knows("bogus")
        assert not registry.knows("mem_")  # bare prefix is not a channel

    def test_shipped_registry_covers_study_gate_events(self):
        cache = ModuleCache(REPO_ROOT)
        registry = build_channel_registry(cache)
        for name in ("forward", "fifo", "mem_sram", "mem_sdram",
                     "mem_ixbus", "m0_pipeline", "m5_pipeline"):
            assert registry.knows(name), name


class TestClassificationMatchesRouting:
    def test_builtins_agree_with_build_monitor(self):
        for formula in (
            forwarding_latency_formula(),
            power_distribution_formula(),
            throughput_distribution_formula(),
        ):
            verdict = classify_formula(formula)
            monitor = build_monitor(formula, mode="compiled")
            assert verdict.compiled == monitor.compiled
            assert verdict.compiled  # paper formulas all compile

    def test_all_study_gates_agree_with_build_monitor(self):
        for mem_gates in (False, True):
            spec = StudySpec(mem_gates=mem_gates)
            for name in list_scenarios():
                for assertion in spec.assertions_for(get_scenario(name)):
                    verdict = classify_formula(assertion.formula)
                    monitor = build_monitor(assertion.formula, mode="compiled")
                    assert verdict.compiled == monitor.compiled, assertion.name

    def test_fallback_formula_routes_interpreted(self):
        formula = "time(forward[i]) - time(forward[0]) <= 1e9"
        verdict = classify_formula(formula)
        monitor = build_monitor(formula, mode="compiled")
        assert not verdict.compiled and not monitor.compiled


GOOD_SCHEMA_MD = (
    "**Schema version:** 7\n\n**Span schema version:** 4\n"
)
GOOD_METRICS = "METRICS_SCHEMA_VERSION = 7\n"
GOOD_SPANS = "SPAN_SCHEMA_VERSION = 4\n"
GOOD_WORKER = (
    "from repro.backends.protocol import recv_message, send_message\n"
    "def serve(sock):\n"
    "    send_message(sock, {'type': 'hello', 'worker': 'w',"
    " 'protocol': 1})\n"
    "    welcome = recv_message(sock)\n"
    "    lease = welcome.get('lease_s')\n"
    "    message = {\n"
    "        'type': 'outcome', 'job_id': 'j', 'outcome': {},\n"
    "        'telemetry': {'jobs_run': 1, 'heartbeats_sent': 2},\n"
    "    }\n"
    "    message['spans'] = []\n"
    "    send_message(sock, message)\n"
)
GOOD_COORDINATOR = (
    "from repro.backends.protocol import recv_message, send_message\n"
    "KEYS = ('jobs_run', 'heartbeats_sent')\n"
    "def handle(conn):\n"
    "    message = recv_message(conn)\n"
    "    kind = message.get('type')\n"
    "    payload = message.get('telemetry')\n"
    "    spans = message.get('spans')\n"
    "    send_message(conn, {'type': 'welcome', 'lease_s': 15.0})\n"
)


def wire_fixture(root, **overrides):
    files = {
        "obs/SCHEMA.md": GOOD_SCHEMA_MD,
        "obs/metrics.py": GOOD_METRICS,
        "obs/spans.py": GOOD_SPANS,
        "backends/worker.py": GOOD_WORKER,
        "backends/distributed.py": GOOD_COORDINATOR,
    }
    files.update(overrides)
    # SCHEMA.md is not a .py; write it outside write_tree's tree walk.
    write_tree(root, {k: v for k, v in files.items() if k.endswith(".py")})
    md = root / "src" / "repro" / "obs" / "SCHEMA.md"
    md.parent.mkdir(parents=True, exist_ok=True)
    md.write_text(files["obs/SCHEMA.md"], encoding="utf-8")
    return ModuleCache(root)


class TestWireRules:
    def test_clean_fixture_has_no_wire_findings(self, tmp_path):
        findings = check_wire(wire_fixture(tmp_path))
        assert findings == []

    def test_wire301_version_drift(self, tmp_path):
        findings = check_wire(wire_fixture(
            tmp_path, **{"obs/metrics.py": "METRICS_SCHEMA_VERSION = 8\n"}
        ))
        assert any(f.code == "WIRE301" and "SCHEMA.md" in f.message
                   for f in findings)

    def test_wire301_int_literal_version(self, tmp_path):
        findings = check_wire(wire_fixture(
            tmp_path,
            **{"obs/spans.py":
               "SPAN_SCHEMA_VERSION = 4\nheader = {'version': 4}\n"},
        ))
        assert any(f.code == "WIRE301" and "literal" in f.message
                   for f in findings)

    def test_wire302_read_of_unsent_key(self, tmp_path):
        coordinator = GOOD_COORDINATOR + (
            "def extra(conn):\n"
            "    message = recv_message(conn)\n"
            "    ghost = message.get('ghost_key')\n"
        )
        findings = check_wire(wire_fixture(
            tmp_path, **{"backends/distributed.py": coordinator}
        ))
        assert any(f.code == "WIRE302" and "ghost_key" in f.message
                   for f in findings)

    def test_wire303_undeclared_telemetry_key(self, tmp_path):
        worker = GOOD_WORKER.replace(
            "'heartbeats_sent': 2", "'heartbeats_sent': 2, 'rogue': 3"
        )
        findings = check_wire(wire_fixture(
            tmp_path, **{"backends/worker.py": worker}
        ))
        assert any(f.code == "WIRE303" and "rogue" in f.message
                   for f in findings)

    def test_wire303_key_never_absorbed(self, tmp_path):
        coordinator = GOOD_COORDINATOR.replace(
            "KEYS = ('jobs_run', 'heartbeats_sent')", "KEYS = ('jobs_run',)"
        )
        findings = check_wire(wire_fixture(
            tmp_path, **{"backends/distributed.py": coordinator}
        ))
        assert any(f.code == "WIRE303" and "heartbeats_sent" in f.message
                   for f in findings)


class TestLintCliAndOutput:
    def test_json_output_schema(self, tmp_path, capsys):
        write_tree(tmp_path, {
            "sim/clocked.py": "import time\nstamp = time.time()\n",
        })
        code = cli_main([
            "lint", "--format", "json", "--root", str(tmp_path),
            "--no-catalog",
        ])
        assert code == 0  # non-strict always exits 0
        payload = _json.loads(capsys.readouterr().out)
        assert set(payload) == {"findings", "summary"}
        assert payload["summary"]["active"] == 1
        (finding,) = payload["findings"]
        assert set(finding) == {
            "code", "message", "file", "line", "col", "hint", "suppressed",
        }
        assert finding["code"] == "DET102"
        assert finding["file"].endswith("sim/clocked.py")
        assert finding["line"] == 2

    def test_strict_exits_1_on_finding(self, tmp_path, capsys):
        write_tree(tmp_path, {
            "sim/clocked.py": "import time\nstamp = time.time()\n",
        })
        code = cli_main([
            "lint", "--strict", "--root", str(tmp_path), "--no-catalog",
        ])
        capsys.readouterr()
        assert code == 1

    def test_github_format_annotations(self, tmp_path, capsys):
        write_tree(tmp_path, {
            "sim/clocked.py": "import time\nstamp = time.time()\n",
        })
        cli_main([
            "lint", "--format", "github", "--root", str(tmp_path),
            "--no-catalog",
        ])
        out = capsys.readouterr().out
        assert "::error file=" in out and "line=2" in out

    def test_single_parse_per_file(self, tmp_path):
        write_tree(tmp_path, {
            "sim/a.py": "x = 1\n",
            "obs/b.py": "y = 2\n",
        })
        cache = ModuleCache(tmp_path)
        check_determinism(cache)
        check_wire(cache)
        first = cache.parsed_count()
        check_determinism(cache)
        check_wire(cache)
        assert cache.parsed_count() == first

    def test_loc_coverage_report_written(self, tmp_path, capsys):
        out_path = tmp_path / "loc-coverage.json"
        code = cli_main([
            "lint", "--root", str(REPO_ROOT),
            "--loc-coverage", str(out_path),
        ])
        capsys.readouterr()
        assert code == 0
        payload = _json.loads(out_path.read_text(encoding="utf-8"))
        assert payload["total_formulas"] == (
            payload["compiled"] + payload["fallback"]
        )
        assert payload["compiled_fraction"] == 1.0  # ROADMAP visibility
        sources = {entry["source"] for entry in payload["formulas"]}
        assert "builtin:forwarding_latency" in sources
        assert any(s.startswith("study:") for s in sources)


class TestShippedTreeIsClean:
    def test_repro_lint_strict_clean_on_shipped_tree(self, capsys):
        code = cli_main(["lint", "--strict", "--root", str(REPO_ROOT)])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "0 finding(s)" in out
