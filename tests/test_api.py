"""Tests for the unified session API (repro.api).

Covers the policy objects (env/kwarg precedence, resolution order),
the Session facade (sweep order, streaming completion order on all
three backends, event hooks, store reuse/overwrite), the deprecation
shims (bit-identical to the session paths), and the study streaming
surface (per-scenario verdicts, byte-identical reports).
"""

import json
import os
import threading

import pytest

from repro.api import (
    EventHooks,
    ExecutionPolicy,
    Session,
    StorePolicy,
    chain_hooks,
    default_session,
)
from repro.backends import (
    BACKEND_ENV_VAR,
    CONNECT_ENV_VAR,
    DistributedBackend,
    ProcessBackend,
    SerialBackend,
)
from repro.backends.worker import run_worker
from repro.config import RunConfig, TrafficConfig
from repro.errors import ExperimentError
from repro.runner import run_simulation
from repro.sweep import ResultStore, SweepSpec, run_sweep
from repro.sweep.engine import WORKERS_ENV_VAR

#: Short, deterministic grid shared by the execution tests.
FAST = dict(duration_cycles=120_000, process="cbr", seeds=(11,))

#: A checker formula that always fails: forwarded spans take time > 0.
ALWAYS_FAILING_CHECK = "time(forward[i+1]) - time(forward[i]) <= 0"


def small_spec(**overrides) -> SweepSpec:
    settings = dict(
        policies=("none", "tdvs"),
        thresholds_mbps=(1200.0,),
        windows_cycles=(40_000,),
        traffic=("load:1000",),
        span=20,
        **FAST,
    )
    settings.update(overrides)
    return SweepSpec(**settings)


def assert_identical(left, right):
    assert [o.job_id for o in left] == [o.job_id for o in right]
    for a, b in zip(left, right):
        assert a.to_dict() == b.to_dict()


class TestExecutionPolicy:
    def test_defaults_defer_to_env_at_resolve_time(self, monkeypatch):
        policy = ExecutionPolicy()
        monkeypatch.setenv(BACKEND_ENV_VAR, "serial")
        monkeypatch.setenv(WORKERS_ENV_VAR, "6")
        assert policy.resolved_workers() == 6
        assert isinstance(policy.make_backend(4), SerialBackend)

    def test_from_env_captures_variables_once(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "process")
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        monkeypatch.setenv(CONNECT_ENV_VAR, "127.0.0.1:7641")
        policy = ExecutionPolicy.from_env()
        assert policy.backend == "process"
        assert policy.workers == 3
        assert policy.connect == "127.0.0.1:7641"
        # Captured: later environment changes no longer matter.
        monkeypatch.setenv(BACKEND_ENV_VAR, "serial")
        monkeypatch.setenv(WORKERS_ENV_VAR, "1")
        backend = policy.make_backend(4)
        assert isinstance(backend, ProcessBackend)
        assert backend.workers == 3

    def test_explicit_kwargs_beat_env_in_from_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "process")
        monkeypatch.setenv(WORKERS_ENV_VAR, "8")
        policy = ExecutionPolicy.from_env(workers=2, backend="serial")
        assert policy.workers == 2
        assert policy.backend == "serial"
        assert isinstance(policy.make_backend(4), SerialBackend)

    def test_explicit_field_beats_env_at_resolve_time(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "process")
        monkeypatch.setenv(WORKERS_ENV_VAR, "8")
        policy = ExecutionPolicy(backend="serial", workers=2)
        assert policy.resolved_workers() == 2
        assert isinstance(policy.make_backend(4), SerialBackend)

    def test_classic_default_serial_for_single_pending_job(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        policy = ExecutionPolicy(workers=4)
        assert isinstance(policy.make_backend(1), SerialBackend)
        assert isinstance(policy.make_backend(2), ProcessBackend)

    def test_invalid_workers_rejected(self):
        with pytest.raises(ExperimentError, match="workers must be >= 1"):
            ExecutionPolicy(workers=0)

    def test_invalid_retries_rejected(self):
        with pytest.raises(ExperimentError, match="retries"):
            ExecutionPolicy(retries=-1)

    def test_bad_env_workers_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "lots")
        with pytest.raises(ExperimentError):
            ExecutionPolicy.from_env()

    def test_retries_and_lease_reach_distributed_backend(self):
        policy = ExecutionPolicy(
            backend="distributed", connect="127.0.0.1:0",
            retries=5, lease_s=9.0,
        )
        backend = policy.make_backend(4)
        try:
            assert isinstance(backend, DistributedBackend)
            assert backend.max_retries == 5
            assert backend.lease_s == 9.0
        finally:
            backend.close()

    def test_scoped_env_exports_and_restores(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        monkeypatch.setenv(BACKEND_ENV_VAR, "process")
        policy = ExecutionPolicy(backend="serial", workers=2)
        with policy.scoped_env():
            assert os.environ[WORKERS_ENV_VAR] == "2"
            assert os.environ[BACKEND_ENV_VAR] == "serial"
        assert WORKERS_ENV_VAR not in os.environ
        assert os.environ[BACKEND_ENV_VAR] == "process"

    def test_scoped_env_rejects_backend_instances(self):
        policy = ExecutionPolicy(backend=SerialBackend())
        with pytest.raises(ExperimentError, match="named backend"):
            with policy.scoped_env():
                pass  # pragma: no cover

    def test_with_override(self):
        policy = ExecutionPolicy(workers=2)
        assert policy.with_(workers=5).workers == 5
        assert policy.workers == 2


class TestSessionSweep:
    def test_sweep_matches_legacy_run_sweep(self):
        jobs = small_spec().jobs()
        with pytest.warns(DeprecationWarning, match="run_sweep"):
            legacy = run_sweep(jobs, workers=1)
        session = Session(execution=ExecutionPolicy(workers=1))
        assert_identical(legacy, session.sweep(jobs))

    def test_sweep_accepts_spec_and_preserves_job_order(self):
        spec = small_spec()
        jobs = spec.jobs()
        outcomes = Session().sweep(spec)
        assert [o.job_id for o in outcomes] == [j.job_id for j in jobs]

    def test_duplicate_jobs_execute_once_and_fan_out(self):
        jobs = small_spec(policies=("none",)).jobs()
        doubled = jobs + jobs
        starts = []
        session = Session(hooks=EventHooks(on_job_start=starts.append))
        outcomes = session.sweep(doubled)
        assert len(outcomes) == 2
        assert outcomes[0] is outcomes[1]
        assert len(starts) == 1  # executed once

    def test_run_single_config_matches_run_simulation(self):
        config = RunConfig(
            benchmark="ipfwdr",
            duration_cycles=120_000,
            seed=11,
            traffic=TrafficConfig(offered_load_mbps=1000.0, process="cbr"),
        )
        outcome = Session().run(config, label="one-off")
        direct = run_simulation(config)
        assert outcome.label == "one-off"
        assert outcome.result.totals == direct.totals

    def test_session_experiment_runs_under_policy(self):
        session = Session(execution=ExecutionPolicy(workers=1))
        result = session.experiment("fig01")
        assert result.experiment_id == "fig01"


class TestSessionStream:
    def test_serial_stream_yields_in_submission_order(self):
        jobs = small_spec().jobs()
        session = Session(execution=ExecutionPolicy(backend="serial"))
        streamed = list(session.stream(jobs))
        assert [o.job_id for o in streamed] == [j.job_id for j in jobs]

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_stream_yields_every_job_exactly_once(self, backend):
        jobs = small_spec().jobs()
        session = Session(
            execution=ExecutionPolicy(backend=backend, workers=2)
        )
        streamed = list(session.stream(jobs))
        assert sorted(o.job_id for o in streamed) == sorted(
            j.job_id for j in jobs
        )

    def test_stream_is_incremental_not_batched(self):
        """The first outcome must arrive before the last job finishes:
        each serial yield happens with later jobs still pending."""
        jobs = small_spec().jobs()
        seen_at_yield = []
        session = Session(execution=ExecutionPolicy(backend="serial"))
        started = []
        stream = session.stream(
            jobs, hooks=EventHooks(on_job_start=started.append)
        )
        for outcome in stream:
            seen_at_yield.append((outcome.job_id, len(started)))
        # At the first yield only the first job had been dispatched.
        assert seen_at_yield[0][1] == 1
        assert seen_at_yield[-1][1] == len(jobs)

    def test_cached_outcomes_stream_first(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        jobs = small_spec().jobs()
        store = ResultStore(path)
        session = Session(store=StorePolicy(store=store))
        session.sweep(jobs[:1])  # prime the cache with the first job
        streamed = list(
            Session(store=StorePolicy(path=path)).stream(list(reversed(jobs)))
        )
        assert streamed[0].job_id == jobs[0].job_id
        assert streamed[0].cached

    @pytest.mark.slow
    def test_distributed_stream_yields_outcomes_in_completion_order(self):
        jobs = small_spec().jobs()
        backend = DistributedBackend(port=0)
        workers = [
            threading.Thread(
                target=run_worker, args=(backend.address,),
                kwargs={"log": None}, daemon=True,
            )
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        session = Session(execution=ExecutionPolicy(backend=backend))
        streamed = list(session.stream(jobs))
        for worker in workers:
            worker.join(timeout=60)
        assert sorted(o.job_id for o in streamed) == sorted(
            j.job_id for j in jobs
        )
        serial = Session(execution=ExecutionPolicy(workers=1)).sweep(jobs)
        by_id = {o.job_id: o for o in streamed}
        assert_identical(serial, [by_id[j.job_id] for j in jobs])


class TestEventHooks:
    def test_all_hooks_fire(self):
        jobs = small_spec(policies=("none",)).jobs()
        events = {"start": [], "outcome": [], "progress": []}
        session = Session(
            hooks=EventHooks(
                on_job_start=lambda job: events["start"].append(job.job_id),
                on_outcome=lambda o: events["outcome"].append(o.job_id),
                progress=lambda done, total, o: events["progress"].append(
                    (done, total)
                ),
            )
        )
        session.sweep(jobs)
        assert events["start"] == [jobs[0].job_id]
        assert events["outcome"] == [jobs[0].job_id]
        assert events["progress"] == [(1, 1)]

    def test_on_check_failed_fires_for_violations(self):
        jobs = small_spec(
            policies=("none",), checks=(ALWAYS_FAILING_CHECK,)
        ).jobs()
        failures = []
        session = Session(
            hooks=EventHooks(
                on_check_failed=lambda o, failed: failures.append(
                    (o.job_id, [c.formula_text for c in failed])
                )
            )
        )
        (outcome,) = session.sweep(jobs)
        assert not outcome.assertions_passed
        assert len(failures) == 1
        job_id, formulas = failures[0]
        assert job_id == jobs[0].job_id
        # The checker reports its canonical (unparsed) formula text.
        assert formulas == [outcome.check_results[0].formula_text]
        assert "<= 0" in formulas[0]

    def test_on_check_failed_quiet_when_checks_pass(self):
        jobs = small_spec(policies=("none",)).jobs()
        failures = []
        session = Session(
            hooks=EventHooks(
                on_check_failed=lambda o, failed: failures.append(o)
            )
        )
        session.sweep(jobs)
        assert failures == []

    def test_session_and_call_hooks_both_fire(self):
        jobs = small_spec(policies=("none",)).jobs()
        order = []
        session = Session(
            hooks=EventHooks(on_outcome=lambda o: order.append("session"))
        )
        session.sweep(
            jobs, hooks=EventHooks(on_outcome=lambda o: order.append("call"))
        )
        assert order == ["session", "call"]

    def test_chain_hooks_empty_is_falsy(self):
        assert not chain_hooks(None, EventHooks())
        assert chain_hooks(EventHooks(progress=print))


class TestStorePolicy:
    def test_reuse_serves_cached_outcomes(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        jobs = small_spec().jobs()
        session = Session(store=StorePolicy(path=path))
        fresh = session.sweep(jobs)
        assert all(not o.cached for o in fresh)
        replay = session.sweep(jobs)
        assert all(o.cached for o in replay)

    def test_overwrite_reruns_and_replaces_records(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        jobs = small_spec(policies=("none",)).jobs()
        Session(store=StorePolicy(path=path)).sweep(jobs)
        rerun = Session(store=StorePolicy(path=path, reuse=False)).sweep(jobs)
        assert all(not o.cached for o in rerun)
        # The file holds two lines for the job; the *last* one wins on
        # reload, so the store still resolves to one record.
        lines = [json.loads(line) for line in open(path)]
        assert len(lines) == 2
        assert len(ResultStore(path)) == 1

    def test_store_instance_wins_over_path(self, tmp_path):
        shared = ResultStore()  # in-memory
        policy = StorePolicy(path=str(tmp_path / "ignored.jsonl"), store=shared)
        assert policy.make() is shared


class TestLegacyShims:
    def test_run_sweep_warns_and_matches(self):
        jobs = small_spec(policies=("none",)).jobs()
        with pytest.warns(DeprecationWarning, match="Session.sweep"):
            legacy = run_sweep(jobs)
        assert_identical(legacy, Session().sweep(jobs))

    def test_run_sweep_env_workers_still_respected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "not a number")
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ExperimentError):
                run_sweep(small_spec(policies=("none",)).jobs())

    def test_run_sweep_backend_kwarg_beats_env(self, monkeypatch):
        """The legacy precedence: an explicit backend= kwarg wins over
        REPRO_SWEEP_BACKEND, which wins over the workers heuristic."""
        monkeypatch.setenv(BACKEND_ENV_VAR, "quantum")  # would be rejected
        jobs = small_spec(policies=("none",)).jobs()
        with pytest.warns(DeprecationWarning):
            (outcome,) = run_sweep(jobs, backend="serial")
        assert outcome.mean_power_w > 0

    def test_run_study_warns_and_matches_session_study(self):
        from repro.studies import StudySpec, run_study
        from repro.studies.report import render_json

        spec = StudySpec(
            scenarios=("flash_crowd",),
            policies=("tdvs",),
            thresholds_mbps=(1200.0,),
            windows_cycles=(40_000,),
            duration_cycles=120_000,
            span=20,
            seeds=(11,),
        )
        spec.validate()
        with pytest.warns(DeprecationWarning, match="Session.study"):
            legacy = run_study(spec, workers=1)
        session = Session(execution=ExecutionPolicy(workers=1))
        via_session = session.study(spec)
        assert render_json(legacy.policy_map) == render_json(
            via_session.policy_map
        )

    def test_default_session_is_shared(self):
        assert default_session() is default_session()


class TestSessionStudy:
    def _spec(self, scenarios=("flash_crowd", "bursty_onoff")):
        from repro.studies import StudySpec

        spec = StudySpec(
            scenarios=scenarios,
            policies=("tdvs",),
            thresholds_mbps=(1200.0,),
            windows_cycles=(40_000,),
            duration_cycles=120_000,
            span=20,
            seeds=(11,),
        )
        spec.validate()
        return spec

    def test_on_scenario_complete_fires_per_scenario(self):
        spec = self._spec()
        verdicts = []
        session = Session(execution=ExecutionPolicy(workers=1))
        result = session.study(spec, on_scenario_complete=verdicts.append)
        assert sorted(v.scenario for v in verdicts) == sorted(
            spec.resolved_scenarios()
        )
        # Early verdicts are identical to the final map's entries.
        for verdict in verdicts:
            final = result.policy_map.entries[verdict.scenario]
            assert verdict.to_dict() == final.to_dict()

    def test_scenario_verdicts_stream_before_study_ends(self):
        """With a serial backend the first scenario's verdict must land
        before the second scenario's outcomes exist."""
        spec = self._spec()
        timeline = []
        session = Session(
            execution=ExecutionPolicy(backend="serial"),
            hooks=EventHooks(
                on_outcome=lambda o: timeline.append(("outcome", o.job_id))
            ),
        )
        session.study(
            spec,
            on_scenario_complete=lambda v: timeline.append(
                ("verdict", v.scenario)
            ),
        )
        first_verdict = next(
            i for i, (kind, _) in enumerate(timeline) if kind == "verdict"
        )
        assert first_verdict < len(timeline) - 1  # not the last event


@pytest.mark.slow
class TestFullCatalogByteIdentity:
    def test_full_catalog_study_via_session_matches_legacy(self):
        """The PR's acceptance shape: a full-catalog study through the
        Session API renders byte-identical JSON to the legacy
        run_study path."""
        from repro.studies import StudySpec, run_study
        from repro.studies.report import render_json

        spec = StudySpec(
            scenarios=(),  # empty = the whole catalog
            policies=("tdvs", "edvs"),
            thresholds_mbps=(1200.0,),
            windows_cycles=(40_000,),
            duration_cycles=120_000,
            span=20,
            seeds=(11,),
        )
        spec.validate()
        assert len(spec.resolved_scenarios()) >= 9  # the full catalog
        with pytest.warns(DeprecationWarning):
            legacy = render_json(run_study(spec, workers=1).policy_map)
        session = Session(execution=ExecutionPolicy(workers=2))
        streamed = render_json(session.study(spec).policy_map)
        assert legacy == streamed
