"""Tests for the benchmark application models and their data structures."""

import random

import pytest

from repro.apps.base import AppProfile, AppResources, build_app, chunks_of
from repro.apps.ipfwdr import IpfwdrApp
from repro.apps.md4 import Md4App
from repro.apps.md4_core import md4_blocks_for, md4_hexdigest
from repro.apps.nat import NatApp
from repro.apps.nat_table import NatTable
from repro.apps.routing import (
    RoutingTrie,
    brute_force_lpm,
    random_routing_trie,
    strides_for_depth,
)
from repro.apps.url import UrlApp
from repro.errors import ConfigError, NpuError
from repro.npu.steps import Compute, Drop, MemPost, MemRead, MemWrite, PutTx
from repro.sim.rng import RngStreams

from test_traffic import make_packet


def fresh_resources():
    return AppResources(num_ports=16, rng_streams=RngStreams(77))


def step_summary(steps):
    """Collect (kind, target) pairs and total compute instructions."""
    kinds = []
    instructions = 0
    for step in steps:
        if isinstance(step, Compute):
            instructions += step.instructions
            kinds.append("compute")
        elif isinstance(step, MemRead):
            kinds.append(f"read:{step.target}")
        elif isinstance(step, MemWrite):
            kinds.append(f"write:{step.target}")
        elif isinstance(step, MemPost):
            kinds.append(f"post:{step.target}")
        elif isinstance(step, PutTx):
            kinds.append("puttx")
        elif isinstance(step, Drop):
            kinds.append("drop")
    return kinds, instructions


class TestChunks:
    def test_chunking(self):
        assert chunks_of(1) == 1
        assert chunks_of(64) == 1
        assert chunks_of(65) == 2
        assert chunks_of(1500) == 24


class TestRoutingTrie:
    def test_default_route(self):
        trie = RoutingTrie(default_port=7)
        port, depth = trie.lookup(0x01020304)
        assert port == 7
        assert depth == 1

    def test_longest_prefix_wins(self):
        trie = RoutingTrie(default_port=0)
        trie.insert(0x0A000000, 8, 1)   # 10/8 -> 1
        trie.insert(0x0A0B0000, 16, 2)  # 10.11/16 -> 2
        assert trie.lookup(0x0A0B0C0D)[0] == 2
        assert trie.lookup(0x0A990C0D)[0] == 1
        assert trie.lookup(0x0B000000)[0] == 0

    def test_against_brute_force(self):
        rng = random.Random(3)
        routes = []
        trie = RoutingTrie(default_port=0)
        for _ in range(200):
            length = rng.choice([8, 12, 16, 20, 24])
            prefix = rng.getrandbits(length) << (32 - length)
            port = rng.randrange(16)
            routes.append((prefix, length, port))
            trie.insert(prefix, length, port)
        for _ in range(300):
            address = rng.getrandbits(32)
            assert trie.lookup(address)[0] == brute_force_lpm(routes, address)

    def test_random_trie_covers_space(self):
        rng = random.Random(4)
        trie = random_routing_trie(rng, num_prefixes=64)
        ports = {trie.lookup(rng.getrandbits(32))[0] for _ in range(400)}
        assert len(ports) >= 12  # destinations spread over most ports

    def test_validation(self):
        trie = RoutingTrie()
        with pytest.raises(NpuError):
            trie.insert(0, 40, 1)
        with pytest.raises(NpuError):
            trie.insert(2**33, 8, 1)

    def test_strides_for_depth(self):
        assert strides_for_depth(1) == 1
        assert strides_for_depth(9) == 1 + 1
        assert strides_for_depth(25) == 4
        assert strides_for_depth(33) == 5  # capped


class TestNatTable:
    def test_translation_stable_per_flow(self):
        table = NatTable()
        flow = (1, 2, 3, 4, 6)
        first = table.translate(flow)
        second = table.translate(flow)
        assert first == second
        assert table.hits == 1
        assert table.misses == 1

    def test_distinct_flows_get_distinct_ports(self):
        table = NatTable()
        a = table.translate((1, 2, 3, 4, 6))
        b = table.translate((5, 6, 7, 8, 6))
        assert a[1] != b[1]

    def test_exhaustion(self):
        table = NatTable(port_count=2)
        table.translate((1, 1, 1, 1, 6))
        table.translate((2, 2, 2, 2, 6))
        assert table.translate((3, 3, 3, 3, 6)) is None
        assert table.exhaustions == 1


class TestMd4Core:
    def test_rfc1320_vectors(self):
        vectors = {
            b"": "31d6cfe0d16ae931b73c59d7e0c089c0",
            b"a": "bde52cb31de33e46245e05fbdbd6fb24",
            b"abc": "a448017aaf21d8525fc10ae87aa6729d",
            b"message digest": "d9130a8164549fe818874806e1c7014b",
            b"abcdefghijklmnopqrstuvwxyz": "d79e1c308aa5bbcdeea8ed63df412da9",
            b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789":
                "043f8582f241db351ce627e153e7f0e4",
            b"1234567890" * 8:
                "e33b4ddc9c38f2199c3e7b164fcc0536",
        }
        for message, expected in vectors.items():
            assert md4_hexdigest(message) == expected

    def test_blocks_for(self):
        assert md4_blocks_for(0) == 1
        assert md4_blocks_for(55) == 1
        assert md4_blocks_for(56) == 2  # padding spills
        assert md4_blocks_for(119) == 2
        assert md4_blocks_for(120) == 3


class TestAppFactory:
    def test_builds_all_benchmarks(self):
        for name, cls in (
            ("ipfwdr", IpfwdrApp),
            ("url", UrlApp),
            ("nat", NatApp),
            ("md4", Md4App),
        ):
            app = build_app(name, fresh_resources())
            assert isinstance(app, cls)
            assert app.name == name

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(NpuError):
            build_app("dns", fresh_resources())

    def test_profile_validation(self):
        with pytest.raises(ConfigError):
            AppProfile(rx_header_instr=0).validate()


class TestIpfwdr:
    def test_rx_steps_shape(self):
        app = build_app("ipfwdr", fresh_resources())
        packet = make_packet(size=320)
        kinds, instructions = step_summary(app.rx_steps(packet))
        assert kinds.count("write:sdram") == 5  # 320 bytes = 5 chunks
        assert "read:sdram" in kinds            # output-port info
        assert "write:scratch" in kinds
        assert kinds[-1] == "puttx"
        assert kinds.count("read:sram") >= 1    # trie walk
        assert instructions > 300
        assert packet.output_port is not None

    def test_tx_steps_posted_fetch(self):
        app = build_app("ipfwdr", fresh_resources())
        packet = make_packet(size=320)
        kinds, _ = step_summary(app.tx_steps(packet))
        assert kinds.count("post:sdram") == 5
        assert kinds[0] == "read:scratch"

    def test_lookup_statistics(self):
        app = build_app("ipfwdr", fresh_resources())
        for k in range(10):
            list(app.rx_steps(make_packet(seq=k, dst_ip=k * 7919)))
        assert app.lookups == 10
        assert app.mean_lookup_depth >= 1.0

    def test_bigger_packets_cost_more(self):
        app = build_app("ipfwdr", fresh_resources())
        small = app.expected_rx_instructions(make_packet(size=64, dst_ip=5))
        large = app.expected_rx_instructions(make_packet(size=1500, dst_ip=5))
        assert large > small


class TestUrl:
    def test_payload_rescanned_from_sdram(self):
        app = build_app("url", fresh_resources())
        packet = make_packet(size=320)
        kinds, _ = step_summary(app.rx_steps(packet))
        # Stored once (5 chunks) and payload (300 B -> 5 chunks) re-read.
        assert kinds.count("write:sdram") == 5
        assert kinds.count("read:sdram") == 5 + 1  # payload + port info
        assert kinds.count("read:sram") == 3  # hash probes

    def test_most_memory_intensive(self):
        resources = fresh_resources()
        packet = make_packet(size=576)
        counts = {}
        for name in ("ipfwdr", "url", "nat"):
            app = build_app(name, AppResources(num_ports=16,
                                               rng_streams=RngStreams(77)))
            kinds, _ = step_summary(app.rx_steps(packet))
            counts[name] = sum(1 for k in kinds if k.startswith(("read:", "write:")))
        assert counts["url"] > counts["ipfwdr"] > counts["nat"]


class TestNat:
    def test_single_sram_lookup_known_flow(self):
        app = build_app("nat", fresh_resources())
        packet = make_packet()
        list(app.rx_steps(packet))          # first packet installs the entry
        kinds, _ = step_summary(app.rx_steps(make_packet(seq=1)))
        assert kinds.count("read:sram") == 1
        assert kinds.count("write:sram") == 0  # known flow: no install
        assert kinds.count("write:sdram") == 0  # cut-through: no body store

    def test_new_flow_installs_entry(self):
        app = build_app("nat", fresh_resources())
        kinds, _ = step_summary(app.rx_steps(make_packet()))
        assert kinds.count("write:sram") == 1

    def test_compute_dominates(self):
        app = build_app("nat", fresh_resources())
        _, instructions = step_summary(app.rx_steps(make_packet()))
        assert instructions > 1500

    def test_port_exhaustion_drops(self):
        resources = fresh_resources()
        resources.nat_table = NatTable(port_count=1)
        app = NatApp(resources)
        list(app.rx_steps(make_packet(flow_id=0)))
        kinds, _ = step_summary(app.rx_steps(make_packet(seq=1, flow_id=1,
                                                         src_ip=9, dst_ip=9)))
        assert "drop" in kinds
        assert app.dropped_exhausted == 1

    def test_tx_has_no_sdram(self):
        app = build_app("nat", fresh_resources())
        kinds, _ = step_summary(app.tx_steps(make_packet()))
        assert not any("sdram" in k for k in kinds)


class TestMd4:
    def test_block_loop_shape(self):
        app = build_app("md4", fresh_resources())
        packet = make_packet(size=320)  # payload 300 B -> 5 MD4 blocks
        kinds, _ = step_summary(app.rx_steps(packet))
        blocks = md4_blocks_for(300)
        assert kinds.count("read:sdram") == blocks
        assert kinds.count("write:sram") == blocks + 1  # + digest
        assert kinds.count("read:sram") == blocks

    def test_real_digest_mode(self):
        app = Md4App(fresh_resources(), compute_real_digests=True)
        packet = make_packet(size=128)
        list(app.rx_steps(packet))
        assert app.last_digest is not None
        from repro.apps.md4_core import md4_digest

        assert app.last_digest == md4_digest(packet.payload())

    def test_compute_scales_with_payload(self):
        app = build_app("md4", fresh_resources())
        small = app.expected_rx_instructions(make_packet(size=64))
        large = app.expected_rx_instructions(make_packet(size=1500))
        assert large > 2 * small
