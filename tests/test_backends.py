"""Tests for the pluggable execution backends (repro.backends).

Covers the contract (any backend, bit-identical outcomes in job
order), the factory/env plumbing, the wire protocol, and the
distributed backend's fault tolerance: worker death mid-sweep,
lease expiry, duplicate-outcome suppression, retry exhaustion.
"""

import json
import os
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import BackendError, ExperimentError
from repro.backends import (
    BACKEND_ENV_VAR,
    CONNECT_ENV_VAR,
    DistributedBackend,
    LeaseClock,
    ProcessBackend,
    SerialBackend,
    get_backend,
    parse_endpoint,
)
from repro.backends.protocol import PROTOCOL_VERSION, recv_message, send_message
from repro.backends.worker import CRASH_ENV_VAR, run_worker
from repro.sweep import ResultStore, SweepSpec, run_sweep

#: Short, deterministic grid shared by the execution tests.
FAST = dict(duration_cycles=120_000, process="cbr", seeds=(11,))


def small_spec(**overrides) -> SweepSpec:
    settings = dict(
        policies=("none", "tdvs"),
        thresholds_mbps=(1200.0,),
        windows_cycles=(40_000,),
        traffic=("load:1000",),
        span=20,
        **FAST,
    )
    settings.update(overrides)
    return SweepSpec(**settings)


def assert_identical(left, right):
    """The contract: same jobs, same numbers, bit for bit."""
    assert [o.job_id for o in left] == [o.job_id for o in right]
    for a, b in zip(left, right):
        assert a.result.totals == b.result.totals
        assert a.result.governor_transitions == b.result.governor_transitions
        assert a.power_dist.counts == b.power_dist.counts
        assert a.to_dict() == b.to_dict()


def start_worker(address, **kwargs):
    """A loopback worker in a daemon thread (same run_job code path)."""
    kwargs.setdefault("log", None)
    thread = threading.Thread(
        target=run_worker, args=(address,), kwargs=kwargs, daemon=True
    )
    thread.start()
    return thread


def spawn_worker_process(address, crash_after_pull=False, extra_env=None):
    """A real ``repro worker`` subprocess (kill-able, unlike a thread)."""
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    src = os.path.join(repo_root, "src")
    existing = os.environ.get("PYTHONPATH")
    env = {
        **os.environ,
        "PYTHONPATH": f"{src}{os.pathsep}{existing}" if existing else src,
    }
    if crash_after_pull:
        env[CRASH_ENV_VAR] = "1"
    env.update(extra_env or {})
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--connect", address, "--quiet", "--timeout", "60"],
        env=env,
        cwd=repo_root,
    )


class TestFactory:
    def test_default_is_serial_for_one_worker(self):
        assert isinstance(get_backend(None, workers=1), SerialBackend)

    def test_default_is_process_pool_for_many(self):
        backend = get_backend(None, workers=4)
        assert isinstance(backend, ProcessBackend)
        assert backend.workers == 4

    def test_name_tokens(self):
        assert isinstance(get_backend("serial"), SerialBackend)
        assert isinstance(get_backend("process", workers=2), ProcessBackend)

    def test_instance_passes_through(self):
        backend = SerialBackend()
        assert get_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(BackendError):
            get_backend("quantum")

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "serial")
        assert isinstance(get_backend(None, workers=8), SerialBackend)

    def test_distributed_requires_endpoint(self, monkeypatch):
        monkeypatch.delenv(CONNECT_ENV_VAR, raising=False)
        with pytest.raises(BackendError):
            get_backend("distributed")

    def test_distributed_endpoint_from_env(self, monkeypatch):
        monkeypatch.setenv(CONNECT_ENV_VAR, "127.0.0.1:0")
        backend = get_backend("distributed")
        try:
            assert backend.port != 0  # ephemeral port resolved at bind
        finally:
            backend.close()

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("127.0.0.1:7641", ("127.0.0.1", 7641)),
            (":7641", ("127.0.0.1", 7641)),
            ("0.0.0.0:0", ("0.0.0.0", 0)),
        ],
    )
    def test_parse_endpoint(self, text, expected):
        assert parse_endpoint(text) == expected

    @pytest.mark.parametrize("text", ["host:port", "nohost", "1.2.3.4:99999"])
    def test_parse_endpoint_rejects(self, text):
        with pytest.raises(BackendError):
            parse_endpoint(text)


class TestLocalBackends:
    def test_serial_backend_matches_inline_default(self):
        jobs = small_spec().jobs()
        assert_identical(
            run_sweep(jobs, workers=1), run_sweep(jobs, backend=SerialBackend())
        )

    def test_process_backend_matches_serial(self):
        jobs = small_spec().jobs()
        assert_identical(
            run_sweep(jobs, workers=1),
            run_sweep(jobs, backend=ProcessBackend(workers=2)),
        )

    def test_backend_name_token_accepted_by_run_sweep(self):
        jobs = small_spec(policies=("none",)).jobs()
        (outcome,) = run_sweep(jobs, backend="serial")
        assert outcome.mean_power_w > 0

    def test_invalid_process_worker_count_rejected(self):
        with pytest.raises(BackendError):
            ProcessBackend(workers=0)


class TestLeaseClock:
    def test_initial_term_until_first_observation(self):
        clock = LeaseClock(initial_s=15.0)
        assert clock.term_s == 15.0
        clock.observe(1.0)
        assert clock.term_s != 15.0

    def test_fast_jobs_shrink_term_to_floor(self):
        clock = LeaseClock(initial_s=15.0, floor_s=2.0, margin=4.0)
        for _ in range(20):
            clock.observe(0.05)
        assert clock.term_s == 2.0  # margin * ewma (0.2s) < floor

    def test_slow_jobs_grow_term_beyond_initial(self):
        clock = LeaseClock(initial_s=15.0, floor_s=2.0, margin=4.0)
        for _ in range(20):
            clock.observe(10.0)
        assert clock.term_s == pytest.approx(40.0)

    def test_cap_bounds_the_term(self):
        clock = LeaseClock(initial_s=15.0, cap_s=60.0)
        for _ in range(20):
            clock.observe(1000.0)
        assert clock.term_s == 60.0

    def test_ewma_tracks_recent_jobs(self):
        clock = LeaseClock(initial_s=15.0, alpha=0.5)
        clock.observe(10.0)
        clock.observe(2.0)
        assert clock.ewma_s == pytest.approx(6.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(BackendError):
            LeaseClock(initial_s=0.0)
        with pytest.raises(BackendError):
            LeaseClock(initial_s=1.0, alpha=0.0)
        with pytest.raises(BackendError):
            LeaseClock(initial_s=1.0, floor_s=10.0, cap_s=5.0)
        with pytest.raises(BackendError):
            LeaseClock(initial_s=1.0, margin=0.0)

    def test_backend_clamps_floor_below_initial_term(self):
        # A lease_s below the default floor must not self-expire.
        backend = DistributedBackend(port=0, lease_s=1.0)
        try:
            assert backend.clock.floor_s <= 1.0
            assert backend.clock.term_s == 1.0
        finally:
            backend.close()


@pytest.mark.slow
class TestDistributedBackend:
    def test_adaptive_lease_term_follows_observed_wall_clock(self):
        """After a sweep of short jobs the clock has observations and
        the next grant's term has adapted below the initial lease."""
        jobs = small_spec().jobs()
        serial = run_sweep(jobs, workers=1)
        backend = DistributedBackend(port=0, lease_s=30.0)
        start_worker(backend.address)
        distributed = run_sweep(jobs, backend=backend)
        assert_identical(serial, distributed)
        clock = backend.clock
        assert clock.ewma_s is not None
        assert clock.term_s < 30.0
        assert clock.term_s >= clock.floor_s

    def test_grant_carries_adapted_lease_term(self):
        """The per-grant lease_s in the wire message reflects the
        adapted term, and the worker heartbeats against it."""
        jobs = small_spec().jobs()  # 2 jobs
        backend = DistributedBackend(port=0, lease_s=30.0)
        backend.clock.observe(0.5)  # pretend a fast job already ran
        expected = backend.clock.term_s
        assert expected != 30.0
        result = {}
        sweep = threading.Thread(
            target=lambda: result.update(outcomes=run_sweep(jobs, backend=backend)),
            daemon=True,
        )
        sweep.start()
        client = socket.create_connection((backend.host, backend.port), timeout=10)
        send_message(client, {"type": "hello", "protocol": PROTOCOL_VERSION})
        welcome = recv_message(client)
        assert welcome["type"] == "welcome"
        assert welcome["lease_s"] == 30.0  # the initial term
        send_message(client, {"type": "pull"})
        grant = recv_message(client)
        assert grant["type"] == "job"
        assert grant["lease_s"] == pytest.approx(expected)
        client.close()  # drop the lease; a real worker drains the sweep
        survivor = start_worker(backend.address)
        sweep.join(timeout=180)
        assert not sweep.is_alive()
        survivor.join(timeout=30)
        assert len(result["outcomes"]) == len(jobs)

    def test_two_loopback_workers_bit_identical_to_serial(self):
        jobs = small_spec().jobs()
        serial = run_sweep(jobs, workers=1)
        backend = DistributedBackend(port=0)
        workers = [start_worker(backend.address) for _ in range(2)]
        distributed = run_sweep(jobs, backend=backend)
        for worker in workers:
            worker.join(timeout=30)
            assert not worker.is_alive()
        assert_identical(serial, distributed)
        assert all(not o.cached for o in distributed)

    def test_store_persists_incrementally_and_replays(self, tmp_path):
        path = str(tmp_path / "dist.jsonl")
        jobs = small_spec().jobs()
        backend = DistributedBackend(port=0)
        start_worker(backend.address)
        fresh = run_sweep(jobs, backend=backend, store=ResultStore(path))
        lines = [json.loads(line) for line in open(path)]
        assert sorted(r["job_id"] for r in lines) == sorted(j.job_id for j in jobs)
        # Crash-resume: a new coordinator over the same store runs nothing.
        replay = run_sweep(
            jobs, backend=DistributedBackend(port=0), store=ResultStore(path)
        )
        assert all(o.cached for o in replay)
        assert_identical(fresh, replay)

    def test_killed_worker_requeues_and_loses_nothing(self):
        """The acceptance property: a worker dying mid-sweep neither
        loses nor duplicates any outcome."""
        jobs = small_spec().jobs()
        serial = run_sweep(jobs, workers=1)
        backend = DistributedBackend(port=0, lease_s=10.0)
        crasher = spawn_worker_process(backend.address, crash_after_pull=True)
        result = {}
        sweep = threading.Thread(
            target=lambda: result.update(outcomes=run_sweep(jobs, backend=backend)),
            daemon=True,
        )
        sweep.start()
        # The crasher is the only worker: it must be granted a job, on
        # which it dies holding the lease (the deterministic kill -9).
        assert crasher.wait(timeout=60) == 17
        survivor = start_worker(backend.address)
        sweep.join(timeout=180)
        assert not sweep.is_alive()
        survivor.join(timeout=30)
        assert_identical(serial, result["outcomes"])

    def test_sigkilled_worker_requeues(self):
        """A real SIGKILL mid-run: EOF on the socket requeues the lease."""
        jobs = small_spec(policies=("none",), duration_cycles=400_000).jobs()
        backend = DistributedBackend(port=0, lease_s=30.0)
        victim = spawn_worker_process(backend.address)
        result = {}
        sweep = threading.Thread(
            target=lambda: result.update(outcomes=run_sweep(jobs, backend=backend)),
            daemon=True,
        )
        sweep.start()
        # Wait until the victim is connected, give it a beat to pull the
        # (only) job, then kill -9 while it holds the lease.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            with backend._conn_lock:
                connected = bool(backend._connections)
            if connected and victim.poll() is None:
                break
            time.sleep(0.1)
        time.sleep(1.0)
        victim.kill()
        victim.wait(timeout=30)
        survivor = start_worker(backend.address)
        sweep.join(timeout=300)
        assert not sweep.is_alive()
        survivor.join(timeout=30)
        serial = run_sweep(jobs, workers=1)
        assert_identical(serial, result["outcomes"])

    def test_retry_exhaustion_surfaces_as_experiment_error(self):
        jobs = small_spec(policies=("none",)).jobs()
        backend = DistributedBackend(port=0, lease_s=10.0, max_retries=0)
        crasher = spawn_worker_process(backend.address, crash_after_pull=True)
        with pytest.raises(ExperimentError, match="failed after"):
            run_sweep(jobs, backend=backend)
        crasher.wait(timeout=30)

    def test_lease_expiry_requeues_hung_worker(self):
        """A worker that stops heartbeating loses its lease."""
        jobs = small_spec(policies=("none",)).jobs()
        serial = run_sweep(jobs, workers=1)
        backend = DistributedBackend(port=0, lease_s=1.0)
        # A hand-rolled client that takes a job and then hangs forever.
        hung = socket.create_connection((backend.host, backend.port), timeout=10)
        result = {}
        sweep = threading.Thread(
            target=lambda: result.update(outcomes=run_sweep(jobs, backend=backend)),
            daemon=True,
        )
        sweep.start()
        send_message(hung, {"type": "hello", "protocol": PROTOCOL_VERSION})
        assert recv_message(hung)["type"] == "welcome"
        send_message(hung, {"type": "pull"})
        grant = recv_message(hung)
        assert grant["type"] == "job"
        # No heartbeat: after lease_s the coordinator requeues the job.
        survivor = start_worker(backend.address)
        sweep.join(timeout=180)
        assert not sweep.is_alive()
        survivor.join(timeout=30)
        hung.close()
        assert_identical(serial, result["outcomes"])

    def test_duplicate_outcome_is_dropped(self):
        """A slow-but-alive leaseholder delivering after a requeue must
        not produce a second copy of the outcome."""
        jobs = small_spec().jobs()  # 2 jobs: the sweep outlives client
        serial = run_sweep(jobs, workers=1)
        backend = DistributedBackend(port=0, lease_s=60.0)
        client = socket.create_connection((backend.host, backend.port), timeout=10)
        result = {}
        sweep = threading.Thread(
            target=lambda: result.update(outcomes=run_sweep(jobs, backend=backend)),
            daemon=True,
        )
        sweep.start()
        send_message(client, {"type": "hello", "protocol": PROTOCOL_VERSION})
        assert recv_message(client)["type"] == "welcome"
        send_message(client, {"type": "pull"})
        grant = recv_message(client)
        assert grant["type"] == "job"
        assert grant["job"]["job_id"] == jobs[0].job_id  # FIFO grant order
        outcome = serial[0].to_dict()
        for _ in range(2):  # deliver the same outcome twice
            send_message(client, {
                "type": "outcome", "job_id": grant["job"]["job_id"],
                "outcome": outcome,
            })
            assert recv_message(client)["type"] == "ok"
        survivor = start_worker(backend.address)  # drains the second job
        sweep.join(timeout=120)
        assert not sweep.is_alive()
        survivor.join(timeout=30)
        client.close()
        assert len(result["outcomes"]) == len(jobs)
        assert_identical(serial, result["outcomes"])

    def test_protocol_mismatch_rejected(self):
        jobs = small_spec(policies=("none",)).jobs()
        backend = DistributedBackend(port=0)
        result = {}
        sweep = threading.Thread(
            target=lambda: result.update(outcomes=run_sweep(jobs, backend=backend)),
            daemon=True,
        )
        sweep.start()
        client = socket.create_connection((backend.host, backend.port), timeout=10)
        send_message(client, {"type": "hello", "protocol": PROTOCOL_VERSION + 1})
        reply = recv_message(client)
        assert reply["type"] == "shutdown"
        assert "protocol mismatch" in reply["error"]
        client.close()
        # A conforming worker still drains the sweep afterwards.
        survivor = start_worker(backend.address)
        sweep.join(timeout=120)
        assert not sweep.is_alive()
        survivor.join(timeout=30)
        assert len(result["outcomes"]) == len(jobs)

    def test_backend_is_single_use(self):
        backend = DistributedBackend(port=0)
        backend.close()
        with pytest.raises(BackendError):
            list(backend.run(small_spec(policies=("none",)).jobs()))

    def test_worker_connect_timeout(self):
        # Nothing listens on this port once the backend is closed.
        backend = DistributedBackend(port=0)
        address = backend.address
        backend.close()
        with pytest.raises(BackendError, match="cannot reach coordinator"):
            run_worker(address, connect_timeout_s=0.2, log=None)

    def test_serve_mode_exits_cleanly_when_no_coordinator(self):
        """--serve treats 'no coordinator appeared' as end of service,
        not an error (but only that: real faults still raise)."""
        backend = DistributedBackend(port=0)
        address = backend.address
        backend.close()
        assert run_worker(address, connect_timeout_s=0.2, serve=True, log=None) == 0

    def test_stale_lease_failure_does_not_cancel_live_lease(self):
        """A worker whose lease was requeued and re-granted cannot burn
        the new holder's lease or retry budget with a late disconnect."""
        # Long enough that the re-granted attempt is still running when
        # the stale client disconnects.
        jobs = small_spec(policies=("none",), duration_cycles=800_000).jobs()
        serial = run_sweep(jobs, workers=1)
        backend = DistributedBackend(port=0, lease_s=1.0, max_retries=1)
        result = {}
        sweep = threading.Thread(
            target=lambda: result.update(outcomes=run_sweep(jobs, backend=backend)),
            daemon=True,
        )
        sweep.start()
        # Stale client: takes the lease, never heartbeats, and
        # disconnects only after the job was requeued and re-granted.
        stale = socket.create_connection((backend.host, backend.port), timeout=10)
        send_message(stale, {"type": "hello", "protocol": PROTOCOL_VERSION})
        assert recv_message(stale)["type"] == "welcome"
        send_message(stale, {"type": "pull"})
        assert recv_message(stale)["type"] == "job"
        time.sleep(2.5)  # lease (1s) expires: attempt 1 lost, job requeued
        survivor = start_worker(backend.address)  # attempt 2, the last one
        time.sleep(0.5)
        stale.close()  # late disconnect must be ignored as stale
        sweep.join(timeout=180)
        assert not sweep.is_alive()
        survivor.join(timeout=30)
        assert_identical(serial, result["outcomes"])


@pytest.mark.slow
class TestDistributedStudy:
    def test_study_json_report_byte_identical_to_serial(self):
        """The PR's acceptance shape: the same study, serially and via
        the distributed backend with two loopback workers, renders the
        byte-identical JSON report."""
        from repro.studies import StudySpec, run_study
        from repro.studies.report import render_json

        spec = StudySpec(
            scenarios=("flash_crowd",),
            policies=("tdvs", "edvs"),
            thresholds_mbps=(1200.0,),
            windows_cycles=(40_000,),
            duration_cycles=120_000,
            span=20,
            seeds=(11,),
        )
        spec.validate()
        serial = render_json(run_study(spec, workers=1).policy_map)
        backend = DistributedBackend(port=0)
        workers = [start_worker(backend.address) for _ in range(2)]
        distributed = render_json(run_study(spec, backend=backend).policy_map)
        for worker in workers:
            worker.join(timeout=60)
        assert serial == distributed
