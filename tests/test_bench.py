"""Tests for the per-run observation benchmark harness."""

import json

import pytest

from repro.bench import (
    DEFAULT_SCENARIOS,
    FUSION_SLACK_FLOOR,
    bench_formulas,
    bench_scenario,
    calibration_ratio,
    compare_bench,
    fusion_regressions,
    host_calibration,
    kernel_gain,
    load_bench_json,
    render_bench_text,
    run_bench,
    write_bench_json,
)


def _artifact(interpreted=80_000.0, compiled=900_000.0, scenario_ev=900_000.0):
    return {
        "bench": "run",
        "profile": "bench",
        "span": 20,
        "repeats": 1,
        "scenarios": {
            "flash_crowd": {
                "events": 700,
                "run_wall_s": {
                    "no_checkers": 0.45,
                    "interpreted": 0.47,
                    "compiled": 0.44,
                },
                "run_events_per_s": {
                    "no_checkers": 1555.6,
                    "interpreted": 1489.4,
                    "compiled": 1590.9,
                },
                "checking": {
                    "replayed_events": 100_000,
                    "interpreted": {"wall_s": 1.0, "events_per_s": interpreted},
                    "compiled": {"wall_s": 0.1, "events_per_s": scenario_ev},
                    "speedup": 10.0,
                },
            }
        },
        "totals": {
            "replayed_events": 100_000,
            "events_per_s_checking": {
                "interpreted": interpreted,
                "compiled": compiled,
            },
            "speedup_compiled_vs_interpreted": compiled / interpreted,
            "run_speedup_with_checkers": 1.05,
        },
    }


class TestCompareBench:
    def test_no_warning_within_tolerance(self):
        old, new = _artifact(), _artifact(compiled=800_000.0)
        assert compare_bench(old, new, tolerance=0.20) == []

    def test_warns_on_total_regression(self):
        old, new = _artifact(), _artifact(
            compiled=500_000.0, scenario_ev=500_000.0
        )
        warnings = compare_bench(old, new, tolerance=0.20)
        assert any("totals.compiled" in w for w in warnings)
        assert any("flash_crowd.compiled" in w for w in warnings)

    def test_new_scenarios_warn_and_skip(self):
        old = _artifact()
        new = _artifact()
        new["scenarios"]["brand_new"] = new["scenarios"]["flash_crowd"]
        warnings = compare_bench(old, new, tolerance=0.20)
        # One-sided scenarios are noted, never compared (no KeyError,
        # no false regression) -- and symmetric keys stay clean.
        assert warnings == [
            "brand_new: in current run but not baseline; skipping comparison"
        ]

    def test_missing_values_ignored(self):
        old = _artifact()
        old["totals"]["events_per_s_checking"]["compiled"] = None
        assert compare_bench(old, _artifact(), tolerance=0.20) == []

    def test_warns_on_run_throughput_regression(self):
        # The kernel-speed number: whole-run events/sec, compiled mode.
        old, new = _artifact(), _artifact()
        new["scenarios"]["flash_crowd"]["run_events_per_s"]["compiled"] = 1000.0
        warnings = compare_bench(old, new, tolerance=0.20)
        assert any("flash_crowd.run.compiled" in w for w in warnings)


class TestKernelGain:
    def test_ratios_and_geomean(self):
        old, new = _artifact(), _artifact()
        new["scenarios"]["flash_crowd"]["run_events_per_s"]["compiled"] = 3181.8
        gain = kernel_gain(old, new)
        entry = gain["scenarios"]["flash_crowd"]
        assert entry["baseline"] == 1590.9
        assert entry["current"] == 3181.8
        assert entry["speedup"] == pytest.approx(2.0, abs=0.01)
        assert gain["min_speedup"] == entry["speedup"]
        assert gain["geomean_speedup"] == pytest.approx(2.0, abs=0.01)

    def test_empty_without_overlap(self):
        gain = kernel_gain({"scenarios": {}}, _artifact())
        assert gain["scenarios"] == {}
        assert gain["min_speedup"] is None
        assert gain["geomean_speedup"] is None


def _fusion_entry(fused, unfused, fused_stddev=0.0, unfused_stddev=0.0):
    data = _artifact()
    data["scenarios"]["flash_crowd"]["fusion"] = {
        "fused_events_per_s": fused,
        "unfused_events_per_s": unfused,
        "speedup": round(fused / unfused, 3),
        "paired_speedups": [round(fused / unfused, 4)] * 3,
        "fused_wall_stats": {
            "best_s": 0.2, "mean_s": 0.21, "stddev_s": fused_stddev,
            "samples": 3,
        },
        "unfused_wall_stats": {
            "best_s": 0.2, "mean_s": 0.21, "stddev_s": unfused_stddev,
            "samples": 3,
        },
    }
    return data


class TestFusionGate:
    def test_clean_when_fused_faster(self):
        assert fusion_regressions(_fusion_entry(1100.0, 1000.0)) == []

    def test_slack_floor_absorbs_jitter(self):
        # A few percent under unfused is measurement noise, not a
        # regression — even when the repeat spread measures zero.
        drop = 1.0 - FUSION_SLACK_FLOOR / 2
        assert fusion_regressions(_fusion_entry(1000.0 * drop, 1000.0)) == []

    def test_fails_beyond_slack_floor(self):
        messages = fusion_regressions(_fusion_entry(880.0, 1000.0))
        assert len(messages) == 1
        assert "flash_crowd" in messages[0]
        assert "12.0%" in messages[0]

    def test_measured_noise_widens_the_gate(self):
        # 12% down but with a 15% repeat spread: inconclusive, no fail.
        data = _fusion_entry(880.0, 1000.0, fused_stddev=0.03)
        assert fusion_regressions(data) == []

    def test_scenarios_without_fusion_data_skipped(self):
        assert fusion_regressions(_artifact()) == []

    def test_single_repeat_lanes_never_gate(self):
        # One sample per side measures jitter, not fusion.
        data = _fusion_entry(700.0, 1000.0)
        fusion = data["scenarios"]["flash_crowd"]["fusion"]
        fusion["fused_wall_stats"]["samples"] = 1
        fusion["unfused_wall_stats"]["samples"] = 1
        assert fusion_regressions(data) == []

    def test_paired_median_outvotes_skewed_minima(self):
        # A host-load spike during the fused samples skews the global
        # minima 12% apart, but each back-to-back pair stayed ~even —
        # the paired median says "no regression" and the gate takes the
        # more favorable estimator.
        data = _fusion_entry(880.0, 1000.0)
        fusion = data["scenarios"]["flash_crowd"]["fusion"]
        fusion["paired_speedups"] = [0.99, 1.0, 1.01]
        assert fusion_regressions(data) == []

    def test_clean_minima_outvote_skewed_pairs(self):
        # The mirror case: a sustained load episode dragged most pairs
        # down, but the best-of-N minima — one clean sample per side is
        # enough — read even.  A real regression would depress both.
        data = _fusion_entry(1000.0, 1000.0)
        fusion = data["scenarios"]["flash_crowd"]["fusion"]
        fusion["paired_speedups"] = [0.9, 0.91, 0.92]
        assert fusion_regressions(data) == []

    def test_artifacts_without_pairs_fall_back_to_minima(self):
        data = _fusion_entry(880.0, 1000.0)
        del data["scenarios"]["flash_crowd"]["fusion"]["paired_speedups"]
        messages = fusion_regressions(data)
        assert len(messages) == 1
        assert "12.0%" in messages[0]


class TestHostCalibration:
    def test_spin_score_is_positive_and_repeatable_shape(self):
        host = host_calibration(repeats=2)
        assert host["spin_ops"] > 0
        assert host["spin_best_s"] > 0
        assert host["ops_per_s"] == pytest.approx(
            host["spin_ops"] / host["spin_best_s"], rel=1e-3
        )

    def test_ratio_defaults_to_one_without_stamps(self):
        assert calibration_ratio(_artifact(), _artifact()) == 1.0

    def test_ratio_scales_with_host_speed(self):
        old, new = _artifact(), _artifact()
        old["host"] = {"ops_per_s": 1_000_000.0}
        new["host"] = {"ops_per_s": 2_000_000.0}
        assert calibration_ratio(old, new) == pytest.approx(2.0)

    def test_compare_bench_rescales_by_calibration(self):
        # Current host is 2x faster; identical simulator speed should
        # read as a ~2x *shortfall* against the calibrated baseline.
        old, new = _artifact(), _artifact()
        old["host"] = {"ops_per_s": 1_000_000.0}
        new["host"] = {"ops_per_s": 2_000_000.0}
        warnings = compare_bench(old, new, tolerance=0.20)
        assert any("flash_crowd.run.compiled" in w for w in warnings)
        # And a half-speed host excuses a halved measurement.
        slow = _artifact()
        slow["host"] = {"ops_per_s": 500_000.0}
        for mode in slow["scenarios"]["flash_crowd"]["run_events_per_s"]:
            slow["scenarios"]["flash_crowd"]["run_events_per_s"][mode] /= 2
        for mode in slow["totals"]["events_per_s_checking"]:
            slow["totals"]["events_per_s_checking"][mode] /= 2
        slow["scenarios"]["flash_crowd"]["checking"]["interpreted"][
            "events_per_s"
        ] /= 2
        slow["scenarios"]["flash_crowd"]["checking"]["compiled"][
            "events_per_s"
        ] /= 2
        assert compare_bench(old, slow, tolerance=0.20) == []


class TestBenchPieces:
    def test_bench_formulas_shape(self):
        formulas = bench_formulas("flash_crowd", span=20)
        # Two paper distributions + the study engine's two gates.
        assert len(formulas) == 4
        texts = [f if isinstance(f, str) else f.unparse() for f in formulas]
        assert any("energy(forward" in t for t in texts)
        assert any("== 1" in t for t in texts)

    def test_default_scenarios_exist(self):
        from repro.scenarios import get_scenario

        for name in DEFAULT_SCENARIOS:
            get_scenario(name)

    def test_json_round_trip(self, tmp_path):
        path = str(tmp_path / "bench.json")
        write_bench_json(_artifact(), path)
        data = load_bench_json(path)
        assert data["totals"]["events_per_s_checking"]["compiled"] == 900_000.0
        with open(path) as handle:
            assert json.load(handle) == data

    def test_render_text(self):
        text = render_bench_text(_artifact())
        assert "flash_crowd" in text
        assert "events/s" in text


@pytest.mark.slow
class TestBenchExecution:
    def test_bench_scenario_measures_and_verifies(self):
        entry = bench_scenario(
            "flash_crowd", profile="bench", repeats=1,
            replay_target_events=5_000,
        )
        assert entry["results_identical"]
        assert entry["events"] > 0
        assert set(entry["run_wall_s"]) == {
            "no_checkers", "interpreted", "compiled",
        }
        assert entry["checking"]["speedup"] > 1.0

    def test_run_bench_totals(self):
        data = run_bench(
            scenarios=["flash_crowd"], repeats=1, replay_target_events=5_000
        )
        assert list(data["scenarios"]) == ["flash_crowd"]
        totals = data["totals"]
        assert totals["speedup_compiled_vs_interpreted"] > 1.0
        render_bench_text(data)  # must render without error

    def test_session_bench_run_wiring(self):
        from repro.api import Session

        seen = []
        data = Session().bench_run(
            scenarios=["flash_crowd"],
            repeats=1,
            replay_target_events=2_000,
            progress=lambda name, entry: seen.append(name),
        )
        assert seen == ["flash_crowd"]
        assert "totals" in data
