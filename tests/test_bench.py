"""Tests for the per-run observation benchmark harness."""

import json

import pytest

from repro.bench import (
    DEFAULT_SCENARIOS,
    bench_formulas,
    bench_scenario,
    compare_bench,
    kernel_gain,
    load_bench_json,
    render_bench_text,
    run_bench,
    write_bench_json,
)


def _artifact(interpreted=80_000.0, compiled=900_000.0, scenario_ev=900_000.0):
    return {
        "bench": "run",
        "profile": "bench",
        "span": 20,
        "repeats": 1,
        "scenarios": {
            "flash_crowd": {
                "events": 700,
                "run_wall_s": {
                    "no_checkers": 0.45,
                    "interpreted": 0.47,
                    "compiled": 0.44,
                },
                "run_events_per_s": {
                    "no_checkers": 1555.6,
                    "interpreted": 1489.4,
                    "compiled": 1590.9,
                },
                "checking": {
                    "replayed_events": 100_000,
                    "interpreted": {"wall_s": 1.0, "events_per_s": interpreted},
                    "compiled": {"wall_s": 0.1, "events_per_s": scenario_ev},
                    "speedup": 10.0,
                },
            }
        },
        "totals": {
            "replayed_events": 100_000,
            "events_per_s_checking": {
                "interpreted": interpreted,
                "compiled": compiled,
            },
            "speedup_compiled_vs_interpreted": compiled / interpreted,
            "run_speedup_with_checkers": 1.05,
        },
    }


class TestCompareBench:
    def test_no_warning_within_tolerance(self):
        old, new = _artifact(), _artifact(compiled=800_000.0)
        assert compare_bench(old, new, tolerance=0.20) == []

    def test_warns_on_total_regression(self):
        old, new = _artifact(), _artifact(
            compiled=500_000.0, scenario_ev=500_000.0
        )
        warnings = compare_bench(old, new, tolerance=0.20)
        assert any("totals.compiled" in w for w in warnings)
        assert any("flash_crowd.compiled" in w for w in warnings)

    def test_new_scenarios_warn_and_skip(self):
        old = _artifact()
        new = _artifact()
        new["scenarios"]["brand_new"] = new["scenarios"]["flash_crowd"]
        warnings = compare_bench(old, new, tolerance=0.20)
        # One-sided scenarios are noted, never compared (no KeyError,
        # no false regression) -- and symmetric keys stay clean.
        assert warnings == [
            "brand_new: in current run but not baseline; skipping comparison"
        ]

    def test_missing_values_ignored(self):
        old = _artifact()
        old["totals"]["events_per_s_checking"]["compiled"] = None
        assert compare_bench(old, _artifact(), tolerance=0.20) == []

    def test_warns_on_run_throughput_regression(self):
        # The kernel-speed number: whole-run events/sec, compiled mode.
        old, new = _artifact(), _artifact()
        new["scenarios"]["flash_crowd"]["run_events_per_s"]["compiled"] = 1000.0
        warnings = compare_bench(old, new, tolerance=0.20)
        assert any("flash_crowd.run.compiled" in w for w in warnings)


class TestKernelGain:
    def test_ratios_and_geomean(self):
        old, new = _artifact(), _artifact()
        new["scenarios"]["flash_crowd"]["run_events_per_s"]["compiled"] = 3181.8
        gain = kernel_gain(old, new)
        entry = gain["scenarios"]["flash_crowd"]
        assert entry["baseline"] == 1590.9
        assert entry["current"] == 3181.8
        assert entry["speedup"] == pytest.approx(2.0, abs=0.01)
        assert gain["min_speedup"] == entry["speedup"]
        assert gain["geomean_speedup"] == pytest.approx(2.0, abs=0.01)

    def test_empty_without_overlap(self):
        gain = kernel_gain({"scenarios": {}}, _artifact())
        assert gain["scenarios"] == {}
        assert gain["min_speedup"] is None
        assert gain["geomean_speedup"] is None


class TestBenchPieces:
    def test_bench_formulas_shape(self):
        formulas = bench_formulas("flash_crowd", span=20)
        # Two paper distributions + the study engine's two gates.
        assert len(formulas) == 4
        texts = [f if isinstance(f, str) else f.unparse() for f in formulas]
        assert any("energy(forward" in t for t in texts)
        assert any("== 1" in t for t in texts)

    def test_default_scenarios_exist(self):
        from repro.scenarios import get_scenario

        for name in DEFAULT_SCENARIOS:
            get_scenario(name)

    def test_json_round_trip(self, tmp_path):
        path = str(tmp_path / "bench.json")
        write_bench_json(_artifact(), path)
        data = load_bench_json(path)
        assert data["totals"]["events_per_s_checking"]["compiled"] == 900_000.0
        with open(path) as handle:
            assert json.load(handle) == data

    def test_render_text(self):
        text = render_bench_text(_artifact())
        assert "flash_crowd" in text
        assert "events/s" in text


@pytest.mark.slow
class TestBenchExecution:
    def test_bench_scenario_measures_and_verifies(self):
        entry = bench_scenario(
            "flash_crowd", profile="bench", repeats=1,
            replay_target_events=5_000,
        )
        assert entry["results_identical"]
        assert entry["events"] > 0
        assert set(entry["run_wall_s"]) == {
            "no_checkers", "interpreted", "compiled",
        }
        assert entry["checking"]["speedup"] > 1.0

    def test_run_bench_totals(self):
        data = run_bench(
            scenarios=["flash_crowd"], repeats=1, replay_target_events=5_000
        )
        assert list(data["scenarios"]) == ["flash_crowd"]
        totals = data["totals"]
        assert totals["speedup_compiled_vs_interpreted"] > 1.0
        render_bench_text(data)  # must render without error

    def test_session_bench_run_wiring(self):
        from repro.api import Session

        seen = []
        data = Session().bench_run(
            scenarios=["flash_crowd"],
            repeats=1,
            replay_target_events=2_000,
            progress=lambda name, entry: seen.append(name),
        )
        assert seen == ["flash_crowd"]
        assert "totals" in data
