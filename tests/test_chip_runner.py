"""Integration tests: the assembled chip and the run loop."""

import pytest

from repro.config import DvsConfig, NpuConfig, RunConfig, TrafficConfig
from repro.errors import ConfigError
from repro.loc.analyzer import DistributionAnalyzer
from repro.loc.builtin import (
    power_distribution_formula,
    throughput_distribution_formula,
)
from repro.loc.checker import build_checker
from repro.npu.chip import build_chip
from repro.runner import SimulationRun, resolve_offered_load_bps, run_simulation
from repro.trace.buffer import TraceBuffer

from conftest import quick_config


class TestChipConstruction:
    def test_build_chip_defaults(self):
        chip = build_chip(quick_config())
        assert len(chip.mes) == 6
        assert len(chip.ports) == 16
        assert len(chip.tx_rings) == 2
        assert [me.role for me in chip.mes] == ["rx"] * 4 + ["tx"] * 2

    def test_custom_me_partition(self):
        config = quick_config(
            npu=NpuConfig(rx_me_indices=(0, 1), tx_me_indices=(2, 3, 4, 5),
                          num_ports=16)
        )
        chip = build_chip(config)
        assert [me.role for me in chip.mes] == ["rx", "rx", "tx", "tx", "tx", "tx"]
        assert len(chip.tx_rings) == 4

    def test_start_only_once(self):
        chip = build_chip(quick_config())
        chip.start()
        with pytest.raises(Exception):
            chip.start()


class TestConservation:
    """Packet conservation: offered = forwarded + dropped + in flight."""

    def _check(self, result, chip):
        totals = result.totals
        in_flight = (
            sum(len(port.rx_queue) + port.rx_queue_reserved for port in chip.ports.ports)
            + sum(len(ring) for ring in chip.tx_rings)
            + sum(
                1
                for me in chip.mes
                for thread in me.threads
                if thread.packet is not None
            )
        )
        wire_pending = chip.ports.total_tx_packets - totals.forwarded_packets
        accounted = (
            totals.forwarded_packets
            + totals.rx_dropped
            + sum(totals.drops_by_reason.values())
            + in_flight
            + wire_pending
        )
        assert accounted == totals.offered_packets

    # Note: the parameter is not named "benchmark" because pytest-benchmark
    # reserves that name for its fixture.
    @pytest.mark.parametrize("bench_name", ["ipfwdr", "url", "nat", "md4"])
    def test_every_benchmark_conserves_packets(self, bench_name):
        run = SimulationRun(quick_config(benchmark=bench_name))
        result = run.run()
        assert result.totals.offered_packets > 50
        assert result.totals.forwarded_packets > 0
        self._check(result, run.chip)

    def test_conservation_under_tdvs_stalls(self):
        run = SimulationRun(
            quick_config(
                duration_cycles=300_000,
                traffic=TrafficConfig(offered_load_mbps=1500.0, process="cbr"),
                dvs=DvsConfig(policy="tdvs", window_cycles=20_000,
                              top_threshold_mbps=1400.0),
            )
        )
        result = run.run()
        self._check(result, run.chip)

    def test_buffer_pool_balanced(self):
        run = SimulationRun(quick_config())
        run.run()
        pool = run.chip.buffer_pool
        # Whatever is still allocated corresponds to in-flight packets.
        assert pool.in_use == len(run.chip._buffer_handles)


class TestTraceEmission:
    def test_fifo_and_forward_events_emitted(self):
        buffer = TraceBuffer()
        result = run_simulation(quick_config(), sinks=[buffer])
        names = {event.name for event in buffer.events}
        assert names == {"fifo", "forward"}
        forwards = [e for e in buffer.events if e.name == "forward"]
        assert len(forwards) == result.totals.forwarded_packets

    def test_annotations_monotone(self):
        buffer = TraceBuffer()
        run_simulation(quick_config(), sinks=[buffer])
        events = buffer.events
        for earlier, later in zip(events, events[1:]):
            assert later.cycle >= earlier.cycle
            assert later.time >= earlier.time
            assert later.energy >= earlier.energy
            assert later.total_pkt >= earlier.total_pkt
            assert later.total_bit >= earlier.total_bit

    def test_forward_counters_step_per_packet(self):
        buffer = TraceBuffer(names=("forward",))
        run_simulation(quick_config(), sinks=[buffer])
        pkts = [e.total_pkt for e in buffer.events]
        assert pkts == list(range(1, len(pkts) + 1))

    def test_pipeline_events_when_enabled(self):
        buffer = TraceBuffer()
        run_simulation(
            quick_config(duration_cycles=40_000, pipeline_events="chunk"),
            sinks=[buffer],
        )
        pipeline_names = {
            e.name for e in buffer.events if e.base_type == "pipeline"
        }
        assert pipeline_names  # m<k>_pipeline events present
        assert all(name.startswith("m") for name in pipeline_names)

    def test_loc_checker_as_live_sink(self):
        checker = build_checker("total_pkt(forward[i+1]) - total_pkt(forward[i]) == 1")
        run_simulation(quick_config(), sinks=[checker])
        assert checker.finish().passed

    def test_loc_analyzers_as_live_sinks(self):
        power = DistributionAnalyzer(power_distribution_formula(span=10))
        throughput = DistributionAnalyzer(throughput_distribution_formula(span=10))
        result = run_simulation(quick_config(), sinks=[power, throughput])
        power_result = power.finish()
        throughput_result = throughput.finish()
        assert power_result.total > 0
        assert throughput_result.total > 0
        # Distribution means sit near the run-level averages.
        assert power_result.mean == pytest.approx(
            result.totals.mean_power_w, rel=0.25
        )
        assert throughput_result.mean == pytest.approx(
            result.totals.throughput_mbps, rel=0.35
        )


class TestRunner:
    def test_single_use(self):
        run = SimulationRun(quick_config())
        run.run()
        with pytest.raises(ConfigError):
            run.run()

    def test_resolve_level_loads(self):
        low = resolve_offered_load_bps(
            quick_config(traffic=TrafficConfig(level="low", offered_load_mbps=None))
        )
        high = resolve_offered_load_bps(
            quick_config(traffic=TrafficConfig(level="high", offered_load_mbps=None))
        )
        assert low < high
        explicit = resolve_offered_load_bps(
            quick_config(traffic=TrafficConfig(offered_load_mbps=123.0))
        )
        assert explicit == 123e6

    def test_duration_matches_cycles(self):
        run = SimulationRun(quick_config(duration_cycles=60_000))
        result = run.run()
        assert result.totals.duration_s == pytest.approx(1e-4, rel=0.01)

    def test_seed_reproducibility(self):
        a = run_simulation(quick_config(seed=5))
        b = run_simulation(quick_config(seed=5))
        assert a.totals.offered_packets == b.totals.offered_packets
        assert a.totals.forwarded_packets == b.totals.forwarded_packets
        assert a.mean_power_w == pytest.approx(b.mean_power_w, rel=1e-12)

    def test_different_seeds_differ(self):
        # CBR spacing fixes the packet *count*, but sizes are drawn from
        # the seed-dependent size stream, so the bit totals must differ.
        a = run_simulation(quick_config(seed=5))
        b = run_simulation(quick_config(seed=6))
        assert a.totals.offered_bits != b.totals.offered_bits
