"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig06" in out
    assert "fig11" in out


def test_run_static_experiment(capsys):
    assert main(["run", "fig05"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5" in out
    assert "1000" in out


def test_run_writes_file(tmp_path, capsys):
    out_path = tmp_path / "fig03.txt"
    assert main(["run", "fig03", "--out", str(out_path)]) == 0
    content = out_path.read_text()
    assert "Annotation type" in content


def test_simulate_command(capsys):
    assert main([
        "simulate", "--benchmark", "nat", "--load", "500",
        "--cycles", "120000", "--process", "cbr",
    ]) == 0
    out = capsys.readouterr().out
    assert "mean power" in out
    assert "ME0" in out


def test_simulate_with_policy(capsys):
    assert main([
        "simulate", "--policy", "tdvs", "--window", "20000",
        "--threshold", "1200", "--load", "300", "--cycles", "200000",
        "--process", "cbr",
    ]) == 0
    out = capsys.readouterr().out
    assert "VF transitions" in out


def test_loc_gen_to_stdout(capsys):
    assert main(["loc-gen", "cycle(deq[i]) - cycle(enq[i]) <= 50"]) == 0
    out = capsys.readouterr().out
    assert "Auto-generated LOC analyzer" in out
    assert "def analyze_lines" in out


def test_loc_gen_to_file(tmp_path, capsys):
    path = tmp_path / "analyzer.py"
    assert main(["loc-gen", "cycle(e[i]) below <0, 5, 1>", "--out", str(path)]) == 0
    assert "def analyze_lines" in path.read_text()


def test_bad_formula_raises():
    with pytest.raises(Exception):
        main(["loc-gen", "not a formula @@"])


def test_unknown_experiment_raises():
    with pytest.raises(Exception):
        main(["run", "fig99"])
