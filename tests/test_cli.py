"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig06" in out
    assert "fig11" in out


def test_run_static_experiment(capsys):
    assert main(["run", "fig05"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5" in out
    assert "1000" in out


def test_run_writes_file(tmp_path, capsys):
    out_path = tmp_path / "fig03.txt"
    assert main(["run", "fig03", "--out", str(out_path)]) == 0
    content = out_path.read_text()
    assert "Annotation type" in content


def test_simulate_command(capsys):
    assert main([
        "simulate", "--benchmark", "nat", "--load", "500",
        "--cycles", "120000", "--process", "cbr",
    ]) == 0
    out = capsys.readouterr().out
    assert "mean power" in out
    assert "ME0" in out


def test_simulate_with_policy(capsys):
    assert main([
        "simulate", "--policy", "tdvs", "--window", "20000",
        "--threshold", "1200", "--load", "300", "--cycles", "200000",
        "--process", "cbr",
    ]) == 0
    out = capsys.readouterr().out
    assert "VF transitions" in out


def test_scenarios_list(capsys):
    assert main(["scenarios"]) == 0
    out = capsys.readouterr().out
    assert "flash_crowd" in out
    assert "ddos_min64" in out
    # At least 8 catalog entries plus the header line.
    assert len(out.strip().splitlines()) >= 9


def test_scenarios_detail(capsys):
    assert main(["scenarios", "link_failover"]) == 0
    out = capsys.readouterr().out
    assert "Link-failover" in out
    assert "Mbps" in out


def test_scenarios_run(capsys):
    assert main([
        "scenarios", "overnight_trough", "--run", "--profile", "bench",
    ]) == 0
    out = capsys.readouterr().out
    assert "mean power" in out
    assert "forwarded" in out


def test_scenarios_unknown_raises():
    with pytest.raises(Exception):
        main(["scenarios", "no_such_workload"])


def test_sweep_small_grid(capsys, tmp_path):
    store = str(tmp_path / "sweep.jsonl")
    argv = [
        "sweep", "--policy", "tdvs", "--threshold", "1200",
        "--window", "40000", "--traffic", "load:800",
        "--profile", "bench", "--workers", "1", "--store", store, "--quiet",
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "1 jobs" in out
    assert "power(W)" in out
    # Second invocation hits the store cache.
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "yes" in out


def test_sweep_explicit_serial_backend(capsys):
    argv = [
        "sweep", "--policy", "tdvs", "--threshold", "1200",
        "--window", "40000", "--traffic", "load:800",
        "--profile", "bench", "--backend", "serial", "--quiet",
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "backend=serial" in out
    assert "power(W)" in out


def test_sweep_distributed_backend_needs_endpoint():
    from repro.errors import BackendError

    argv = [
        "sweep", "--policy", "tdvs", "--threshold", "1200",
        "--window", "40000", "--profile", "bench",
        "--backend", "distributed", "--quiet",
    ]
    with pytest.raises(BackendError):
        main(argv)


@pytest.mark.slow
def test_worker_command_drains_a_distributed_sweep(capsys):
    """`repro worker --connect` against an in-process coordinator."""
    import threading

    from repro.backends import DistributedBackend
    from repro.sweep import SweepSpec, run_sweep

    jobs = SweepSpec(
        policies=("none",), traffic=("load:800",),
        duration_cycles=120_000, process="cbr", seeds=(11,),
    ).jobs()
    backend = DistributedBackend(port=0)
    result = {}
    sweep = threading.Thread(
        target=lambda: result.update(outcomes=run_sweep(jobs, backend=backend)),
        daemon=True,
    )
    sweep.start()
    assert main(["worker", "--connect", backend.address, "--quiet"]) == 0
    sweep.join(timeout=120)
    assert not sweep.is_alive()
    out = capsys.readouterr().out
    assert "completed 1 job(s)" in out
    assert len(result["outcomes"]) == 1


def test_worker_requires_connect():
    with pytest.raises(SystemExit):
        main(["worker"])


def test_loc_gen_to_stdout(capsys):
    assert main(["loc-gen", "cycle(deq[i]) - cycle(enq[i]) <= 50"]) == 0
    out = capsys.readouterr().out
    assert "Auto-generated LOC analyzer" in out
    assert "def analyze_lines" in out


def test_loc_gen_to_file(tmp_path, capsys):
    path = tmp_path / "analyzer.py"
    assert main(["loc-gen", "cycle(e[i]) below <0, 5, 1>", "--out", str(path)]) == 0
    assert "def analyze_lines" in path.read_text()


def test_bad_formula_raises():
    with pytest.raises(Exception):
        main(["loc-gen", "not a formula @@"])


def test_unknown_experiment_raises():
    with pytest.raises(Exception):
        main(["run", "fig99"])


@pytest.mark.slow
def test_bench_command_writes_artifact(tmp_path, capsys):
    out = tmp_path / "BENCH_run.json"
    argv = [
        "bench", "--scenario", "flash_crowd", "--repeats", "1",
        "--replay-events", "2000", "--out", str(out), "--quiet",
    ]
    assert main(argv) == 0
    captured = capsys.readouterr().out
    assert "checking path" in captured
    import json

    data = json.loads(out.read_text())
    assert data["bench"] == "run"
    assert "flash_crowd" in data["scenarios"]
    # The soft gate: a matching baseline produces no warnings.
    argv += ["--baseline", str(out)]
    assert main(argv) == 0
