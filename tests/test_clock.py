"""Tests for clock domains with runtime frequency changes."""

import pytest

from repro.errors import ClockError
from repro.sim.clock import ClockDomain, FixedClock
from repro.sim.kernel import Simulator
from repro.units import mhz


def test_initial_frequency():
    sim = Simulator()
    clock = ClockDomain(sim, mhz(600))
    assert clock.freq_hz == mhz(600)
    assert clock.period_ps == round(1e12 / 600e6)


def test_cycles_accumulate_at_fixed_frequency():
    sim = Simulator()
    clock = ClockDomain(sim, mhz(500))  # 2 ns period
    assert clock.cycles_at(0) == 0
    assert clock.cycles_at(2_000) == pytest.approx(1.0)
    assert clock.cycles_at(20_000) == pytest.approx(10.0)


def test_cycles_continuous_across_frequency_change():
    sim = Simulator()
    clock = ClockDomain(sim, mhz(600))
    sim.run(until_ps=1_000_000)  # 1 us at 600 MHz = 600 cycles
    before = clock.cycles_now
    clock.set_frequency(mhz(400))
    sim.run(until_ps=2_000_000)  # +1 us at 400 MHz = +400 cycles
    after = clock.cycles_now
    assert before == pytest.approx(600.0)
    assert after == pytest.approx(1000.0)


def test_cycles_at_queries_historical_segments():
    sim = Simulator()
    clock = ClockDomain(sim, mhz(600))
    sim.run(until_ps=1_000_000)
    clock.set_frequency(mhz(400))
    sim.run(until_ps=3_000_000)
    # Query inside the first segment.
    assert clock.cycles_at(500_000) == pytest.approx(300.0)
    # Query inside the second segment.
    assert clock.cycles_at(2_000_000) == pytest.approx(1000.0)


def test_delay_for_cycles_uses_current_rate():
    sim = Simulator()
    clock = ClockDomain(sim, mhz(500))
    assert clock.delay_for_cycles(10) == 20_000
    clock.set_frequency(mhz(250))
    assert clock.delay_for_cycles(10) == 40_000


def test_time_of_cycle_inverts_cycles_at():
    sim = Simulator()
    clock = ClockDomain(sim, mhz(600))
    sim.run(until_ps=1_000_000)
    clock.set_frequency(mhz(450))
    sim.run(until_ps=2_000_000)
    for time_ps in (0, 400_000, 1_000_000, 1_500_000, 2_000_000):
        cycles = clock.cycles_at(time_ps)
        assert clock.time_of_cycle(cycles) == pytest.approx(time_ps, abs=2)


def test_set_same_frequency_is_noop():
    sim = Simulator()
    clock = ClockDomain(sim, mhz(600))
    clock.set_frequency(mhz(600))
    assert clock.freq_changes == 0


def test_freq_changes_counted():
    sim = Simulator()
    clock = ClockDomain(sim, mhz(600))
    sim.run(until_ps=1000)
    clock.set_frequency(mhz(550))
    sim.run(until_ps=2000)
    clock.set_frequency(mhz(500))
    assert clock.freq_changes == 2
    assert len(clock.history()) == 3


def test_zero_length_segment_replaced():
    sim = Simulator()
    clock = ClockDomain(sim, mhz(600))
    sim.run(until_ps=1000)
    clock.set_frequency(mhz(550))
    clock.set_frequency(mhz(500))  # same instant: replaces, not stacks
    assert len(clock.history()) == 2
    assert clock.freq_hz == mhz(500)


def test_invalid_frequency_rejected():
    sim = Simulator()
    with pytest.raises(ClockError):
        ClockDomain(sim, 0)
    clock = ClockDomain(sim, mhz(600))
    with pytest.raises(ClockError):
        clock.set_frequency(-1)


def test_query_before_creation_rejected():
    sim = Simulator()
    sim.run(until_ps=1000)
    clock = ClockDomain(sim, mhz(600))
    with pytest.raises(ClockError):
        clock.cycles_at(500)


def test_negative_cycle_arguments_rejected():
    sim = Simulator()
    clock = ClockDomain(sim, mhz(600))
    with pytest.raises(ClockError):
        clock.delay_for_cycles(-1)
    with pytest.raises(ClockError):
        clock.time_of_cycle(-1)


def test_fixed_clock_rejects_frequency_change():
    sim = Simulator()
    clock = FixedClock(sim, mhz(600))
    with pytest.raises(ClockError):
        clock.set_frequency(mhz(400))
