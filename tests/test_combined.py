"""Tests for the combined TDVS+EDVS extension governor."""

import pytest

from repro.config import DvsConfig, TrafficConfig
from repro.runner import SimulationRun, run_simulation

from conftest import quick_config


def combined_config(load_mbps, **kw):
    return quick_config(
        duration_cycles=kw.pop("duration_cycles", 600_000),
        traffic=TrafficConfig(offered_load_mbps=load_mbps, process="cbr"),
        dvs=DvsConfig(policy="combined", window_cycles=20_000,
                      top_threshold_mbps=1000.0, idle_threshold=0.10),
        **kw,
    )


def test_low_traffic_floor_drives_all_mes_down():
    result = run_simulation(combined_config(150.0))
    # Traffic floor walks the whole chip down like TDVS would.
    for me in result.totals.me_summaries:
        assert me.freq_mhz == 400.0


def test_high_traffic_keeps_floor_up_but_idle_refines():
    run = SimulationRun(combined_config(1550.0, duration_cycles=800_000))
    result = run.run()
    governor = run.governor
    # The floor stays fast at saturating traffic...
    assert governor.traffic_floor <= 1
    # ...and per-ME refinement may slow memory-bound receive MEs anyway.
    assert any(
        governor.effective_level(me.index) >= governor.traffic_floor
        for me in run.chip.mes
    )


def test_effective_level_is_slower_of_the_two():
    run = SimulationRun(combined_config(400.0))
    run.run()
    governor = run.governor
    for me_index, idle_level in governor.idle_levels.items():
        assert governor.effective_level(me_index) == max(
            governor.traffic_floor, idle_level
        )


def test_combined_never_worse_than_best_single_policy_on_power():
    """At low traffic the combination must at least match TDVS."""
    traffic = TrafficConfig(offered_load_mbps=300.0, process="cbr")
    base = dict(duration_cycles=600_000, traffic=traffic)
    tdvs = run_simulation(quick_config(
        **base, dvs=DvsConfig(policy="tdvs", window_cycles=20_000,
                              top_threshold_mbps=1000.0)))
    combined = run_simulation(quick_config(
        **base, dvs=DvsConfig(policy="combined", window_cycles=20_000,
                              top_threshold_mbps=1000.0)))
    assert combined.mean_power_w <= tdvs.mean_power_w * 1.02


def test_both_monitors_charge_overhead():
    result = run_simulation(combined_config(800.0))
    assert result.dvs_overhead_w > 0
    # Still far below the paper's 1% bound even with both monitors.
    assert result.dvs_overhead_w < 0.01 * result.mean_power_w


def test_extension_experiment_registered():
    from repro.experiments import run_experiment

    result = run_experiment("abl-combined", profile="bench")
    data = result.data
    assert set(data) == {"none", "tdvs", "edvs", "combined"}
    assert data["combined"]["power_w"] < data["none"]["power_w"]
    # The combined monitors cost more than either single monitor...
    assert data["combined"]["overhead_w"] >= data["tdvs"]["overhead_w"]
    # ...but remain well under 1% of chip power (quantifying the paper's
    # declined-for-cost argument).
    assert data["combined"]["overhead_w"] < 0.01 * data["combined"]["power_w"]


def test_formula1_experiment():
    from repro.experiments import run_experiment

    result = run_experiment("formula1", profile="bench")
    assert result.data["instances"] > 50
    assert 0 < result.data["mean_us"] < 1000
