"""Tests for configuration dataclasses."""

import pytest

from repro.config import (
    DvsConfig,
    MemoryConfig,
    NpuConfig,
    PowerConfig,
    RunConfig,
    TrafficConfig,
)
from repro.errors import ConfigError


class TestNpuConfig:
    def test_defaults_valid(self):
        NpuConfig().validate()

    def test_ports_per_rx_me(self):
        assert NpuConfig().ports_per_rx_me == 4

    def test_me_partition_enforced(self):
        with pytest.raises(ConfigError):
            NpuConfig(rx_me_indices=(0, 1), tx_me_indices=(4, 5)).validate()

    def test_overlapping_partition_rejected(self):
        with pytest.raises(ConfigError):
            NpuConfig(
                rx_me_indices=(0, 1, 2, 3), tx_me_indices=(3, 4)
            ).validate()

    def test_ports_must_divide_among_rx_mes(self):
        with pytest.raises(ConfigError):
            NpuConfig(num_ports=15).validate()

    def test_freq_step_must_divide_range(self):
        with pytest.raises(ConfigError):
            NpuConfig(me_freq_step_hz=70e6).validate()

    def test_vdd_ordering_enforced(self):
        with pytest.raises(ConfigError):
            NpuConfig(me_vdd_min=1.4, me_vdd_max=1.3).validate()


class TestDvsConfig:
    def test_defaults_valid(self):
        DvsConfig().validate()

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            DvsConfig(policy="magic").validate()

    def test_idle_threshold_bounds(self):
        with pytest.raises(ConfigError):
            DvsConfig(idle_threshold=0.0).validate()
        with pytest.raises(ConfigError):
            DvsConfig(idle_threshold=1.0).validate()

    def test_hysteresis_bounds(self):
        DvsConfig(tdvs_hysteresis=0.5).validate()
        with pytest.raises(ConfigError):
            DvsConfig(tdvs_hysteresis=1.0).validate()


class TestTrafficConfig:
    def test_exactly_one_of_level_or_load(self):
        with pytest.raises(ConfigError):
            TrafficConfig(level="high", offered_load_mbps=1000.0).validate()
        with pytest.raises(ConfigError):
            TrafficConfig(level=None, offered_load_mbps=None).validate()

    def test_level_names(self):
        TrafficConfig(level="low", offered_load_mbps=None).validate()
        with pytest.raises(ConfigError):
            TrafficConfig(level="peak", offered_load_mbps=None).validate()

    def test_unknown_process_rejected(self):
        with pytest.raises(ConfigError):
            TrafficConfig(process="pareto").validate()


class TestRunConfig:
    def test_defaults_valid(self):
        RunConfig().validate()

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ConfigError):
            RunConfig(benchmark="dns").validate()

    def test_pipeline_events_values(self):
        RunConfig(pipeline_events="chunk").validate()
        with pytest.raises(ConfigError):
            RunConfig(pipeline_events="everything").validate()

    def test_dict_round_trip(self):
        config = RunConfig(
            benchmark="url",
            duration_cycles=1000,
            dvs=DvsConfig(policy="tdvs", window_cycles=20_000),
            traffic=TrafficConfig(offered_load_mbps=800.0),
        )
        data = config.to_dict()
        rebuilt = RunConfig.from_dict(data)
        assert rebuilt == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigError):
            RunConfig.from_dict({"benchmark": "ipfwdr", "bogus": 1})

    def test_replaced_revalidates(self):
        config = RunConfig()
        with pytest.raises(ConfigError):
            config.replaced(benchmark="nope")

    def test_replaced_copies(self):
        config = RunConfig()
        other = config.replaced(duration_cycles=42)
        assert other.duration_cycles == 42
        assert config.duration_cycles != 42


class TestMemoryConfig:
    def test_defaults_valid(self):
        MemoryConfig().validate()

    def test_negative_timing_rejected(self):
        with pytest.raises(ConfigError):
            MemoryConfig(sdram_access_ns=0).validate()
        with pytest.raises(ConfigError):
            MemoryConfig(sram_byte_ns=-0.1).validate()


class TestPowerConfig:
    def test_defaults_valid(self):
        PowerConfig().validate()

    def test_idle_fraction_bounds(self):
        with pytest.raises(ConfigError):
            PowerConfig(me_idle_fraction=1.5).validate()
