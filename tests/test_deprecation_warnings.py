"""Regression wall for the legacy-shim deprecation warnings.

``run_sweep``/``run_study`` warn with ``stacklevel=2`` so the report
points at the *caller's* line, not the shim body — the only way the
warning is actionable from a long experiment script.  These tests pin
the attributed filename/line to this file; if a refactor wraps the
shims in another layer (changing the effective stack depth), they
fail.
"""

import warnings

from repro.studies.engine import run_study
from repro.studies.spec import StudySpec
from repro.sweep.engine import run_sweep
from repro.sweep.spec import SweepSpec


def _tiny_spec() -> SweepSpec:
    return SweepSpec(
        policies=("none",),
        traffic=("load:200",),
        duration_cycles=20_000,
    )


def test_run_sweep_warning_points_at_caller():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        run_sweep(_tiny_spec().jobs(), workers=1)  # the attributed line
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1
    assert deprecations[0].filename == __file__
    assert "Session.sweep" in str(deprecations[0].message)


def test_run_study_warning_points_at_caller():
    spec = StudySpec(
        scenarios=("flash_crowd",),
        policies=("tdvs",),
        thresholds_mbps=(1000.0,),
        windows_cycles=(40_000,),
        duration_cycles=20_000,
        span=5,
    )
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        run_study(spec, workers=1)  # the attributed line
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1
    assert deprecations[0].filename == __file__
    assert "Session.study" in str(deprecations[0].message)
