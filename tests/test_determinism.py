"""Determinism regression wall around the sweep substrate.

Pins down three contracts future scaling PRs must not break:

* **Job identity is stable across releases** — golden config hashes.
  A hash change silently invalidates every on-disk result store, so it
  must always be a deliberate, reviewed event (update the goldens in
  the same commit that changes the hashing scheme).
* **Worker count never changes results** — serial and parallel
  ``run_sweep`` outputs are bit-identical, down to the serialized dict.
* **Cache replay is lossless** — a ``ResultStore`` reloaded from disk
  returns rows bit-identical to the outcomes that produced them.
"""

import json

import pytest

from repro.config import DvsConfig, RunConfig, TrafficConfig
from repro.sweep import Job, ResultStore, SweepSpec, config_hash, run_sweep

#: Golden identity hashes.  If a change to RunConfig defaults, the
#: to_dict schema, or the hashing payload alters these, every existing
#: JSONL result store stops acting as a cache — bump the goldens only
#: when that invalidation is intended.
GOLDEN_DEFAULT_CONFIG_HASH = "a017c46d3db3322b"
GOLDEN_SCENARIO_JOB_ID = "1b807faede27c961"
GOLDEN_CHECKED_JOB_ID = "336cec82d6b48e68"

CHECK = "total_pkt(forward[i+1]) - total_pkt(forward[i]) == 1"


def scenario_config() -> RunConfig:
    return RunConfig(
        duration_cycles=120_000,
        seed=11,
        traffic=TrafficConfig.for_scenario("flash_crowd"),
        dvs=DvsConfig(policy="tdvs", window_cycles=40_000, top_threshold_mbps=1200.0),
    )


def small_spec(**overrides) -> SweepSpec:
    settings = dict(
        policies=("none", "tdvs", "edvs"),
        thresholds_mbps=(1200.0,),
        windows_cycles=(40_000,),
        traffic=("scenario:link_failover", "load:900"),
        seeds=(11,),
        duration_cycles=120_000,
        span=20,
        checks=(CHECK,),
    )
    settings.update(overrides)
    return SweepSpec(**settings)


def outcome_dicts(outcomes):
    """Fully serialized outcome list — the bit-identity yardstick."""
    return [json.dumps(o.to_dict(), sort_keys=True) for o in outcomes]


class TestGoldenHashes:
    def test_default_config_hash(self):
        assert config_hash(RunConfig().to_dict()) == GOLDEN_DEFAULT_CONFIG_HASH

    def test_scenario_job_id(self):
        job = Job.build(scenario_config(), span=20)
        assert job.job_id == GOLDEN_SCENARIO_JOB_ID

    def test_checks_change_job_identity(self):
        job = Job.build(scenario_config(), span=20, checks=(CHECK,))
        assert job.job_id == GOLDEN_CHECKED_JOB_ID
        assert job.job_id != GOLDEN_SCENARIO_JOB_ID

    def test_empty_checks_preserve_legacy_identity(self):
        """checks=() must hash exactly like the pre-checks scheme."""
        assert Job.build(scenario_config(), span=20, checks=()).job_id == (
            GOLDEN_SCENARIO_JOB_ID
        )

    def test_check_order_changes_identity(self):
        other = "time(forward[i+1]) - time(forward[i]) >= 0"
        a = Job.build(scenario_config(), checks=(CHECK, other))
        b = Job.build(scenario_config(), checks=(other, CHECK))
        assert a.job_id != b.job_id


class TestSerialParallelBitIdentity:
    @pytest.mark.slow
    def test_outputs_bit_identical(self):
        jobs = small_spec().jobs()
        serial = run_sweep(jobs, workers=1)
        parallel = run_sweep(jobs, workers=3)
        assert outcome_dicts(serial) == outcome_dicts(parallel)

    @pytest.mark.slow
    def test_check_results_bit_identical(self):
        jobs = small_spec().jobs()
        serial = run_sweep(jobs, workers=1)
        parallel = run_sweep(jobs, workers=2)
        for s, p in zip(serial, parallel):
            assert [c.to_dict() for c in s.check_results] == [
                c.to_dict() for c in p.check_results
            ]
            assert s.check_results and s.check_results[0].instances_checked > 0


class TestStoreReplay:
    def test_replay_rows_bit_identical(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        jobs = small_spec(policies=("none", "tdvs")).jobs()
        fresh = run_sweep(jobs, workers=1, store=ResultStore(path))

        replayed = run_sweep(jobs, workers=1, store=ResultStore(path))
        assert all(o.cached for o in replayed)
        assert outcome_dicts(fresh) == outcome_dicts(replayed)

    def test_replay_preserves_check_results(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        (job,) = small_spec(
            policies=("none",), traffic=("scenario:link_failover",)
        ).jobs()
        (fresh,) = run_sweep([job], workers=1, store=ResultStore(path))
        cached = ResultStore(path).get(job.job_id)
        assert cached is not None
        assert [c.to_dict() for c in cached.check_results] == [
            c.to_dict() for c in fresh.check_results
        ]
        assert cached.assertions_passed == fresh.assertions_passed

    def test_legacy_rows_without_checks_still_load(self, tmp_path):
        """Stores written before the checks field must stay readable."""
        path = str(tmp_path / "results.jsonl")
        (job,) = small_spec(
            policies=("none",), traffic=("load:900",), checks=()
        ).jobs()
        run_sweep([job], workers=1, store=ResultStore(path))
        record = json.loads(open(path).readline())
        record.pop("check_results")
        (tmp_path / "legacy.jsonl").write_text(json.dumps(record) + "\n")
        legacy = ResultStore(str(tmp_path / "legacy.jsonl")).get(job.job_id)
        assert legacy is not None
        assert legacy.check_results == []
        assert legacy.assertions_passed
