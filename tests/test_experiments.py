"""Tests for the experiment registry and the per-figure harnesses.

Simulation-backed experiments run with the ``bench`` profile (short
runs); the assertions target the paper's *qualitative* findings, which
hold even at reduced cycle counts.
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments import get_experiment, list_experiments, run_experiment
from repro.experiments.common import (
    TDVS_THRESHOLDS_MBPS,
    TDVS_WINDOWS_CYCLES,
    clear_caches,
    tdvs_design_space,
)


def test_registry_lists_all_paper_artifacts():
    ids = list_experiments()
    for expected in (
        "fig01", "fig02", "fig03", "fig04", "fig05", "fig06", "fig07",
        "fig08", "fig09", "fig10", "fig11", "idle",
        "abl-penalty", "abl-polling", "abl-hysteresis",
    ):
        assert expected in ids


def test_unknown_experiment_rejected():
    with pytest.raises(ExperimentError):
        get_experiment("fig99")


def test_unknown_profile_rejected():
    with pytest.raises(ExperimentError):
        run_experiment("fig06", profile="huge")


class TestStaticExperiments:
    def test_fig01_table(self):
        result = run_experiment("fig01")
        assert "IXP1200" in result.text
        assert "IXP2800" in result.text
        # The family trend the paper highlights: power grows with complexity.
        powers = [row[5] for row in result.data["rows"][:3]]
        assert powers == sorted(powers)

    def test_fig02_diurnal_shape(self):
        result = run_experiment("fig02")
        assert result.data["peak_bps"] > 5 * result.data["trough_bps"]
        buckets = result.data["buckets"]
        for _, low, med, high in buckets:
            assert low <= med <= high

    def test_fig03_schema(self):
        result = run_experiment("fig03")
        assert result.data["events"] == ["pipeline", "forward", "fifo"]
        assert "total_bit" in result.data["annotations"]

    def test_fig04_snapshot(self):
        result = run_experiment("fig04")
        assert "cycle time(us) energy" in result.text
        assert "forward" in result.text
        assert any(
            name.endswith("_pipeline") for name in result.data["event_names"]
        )

    def test_fig05_matches_paper_row(self):
        result = run_experiment("fig05")
        thresholds = [round(row[2]) for row in result.data["rows"]]
        assert thresholds == [1000, 917, 833, 750, 667]


class TestDesignSpaceExperiments:
    @pytest.fixture(scope="class")
    def grid(self):
        clear_caches()
        return tdvs_design_space("bench")

    def test_grid_complete(self, grid):
        assert (None, None) in grid
        assert len(grid) == 1 + len(TDVS_THRESHOLDS_MBPS) * len(TDVS_WINDOWS_CYCLES)

    def test_fig06_every_tdvs_point_saves_power(self, grid):
        result = run_experiment("fig06", profile="bench")
        baseline = result.data["mean_power_w"][(None, None)]
        for key, power in result.data["mean_power_w"].items():
            if key == (None, None):
                continue
            assert power < baseline

    def test_fig06_smaller_windows_lower_power(self, grid):
        result = run_experiment("fig06", profile="bench")
        powers = result.data["mean_power_w"]
        for threshold in TDVS_THRESHOLDS_MBPS:
            assert powers[(threshold, 20_000)] < powers[(threshold, 80_000)]

    def test_fig07_small_windows_cost_throughput(self, grid):
        result = run_experiment("fig07", profile="bench")
        throughput = result.data["throughput_mbps"]
        baseline = throughput[(None, None)]
        # 20k windows lose measurably more than 80k at the high threshold.
        assert throughput[(1400.0, 20_000)] < throughput[(1400.0, 80_000)]
        assert throughput[(1400.0, 80_000)] <= baseline * 1.02

    def test_fig08_surface_renders(self, grid):
        result = run_experiment("fig08", profile="bench")
        assert len(result.data["grid"]) == len(TDVS_THRESHOLDS_MBPS)
        assert "lowest-power design point" in result.text

    def test_fig09_surface_renders(self, grid):
        result = run_experiment("fig09", profile="bench")
        assert len(result.data["grid"][0]) == len(TDVS_WINDOWS_CYCLES)
        assert "best-throughput design point" in result.text

    def test_fig08_fig09_tradeoff_direction(self, grid):
        power = run_experiment("fig08", profile="bench").data
        throughput = run_experiment("fig09", profile="bench").data
        # The lowest-power point must not also be the best-throughput point.
        assert power["argmin"][:2] != throughput["argmax"][:2]


class TestEdvsExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig10", profile="bench")

    def test_power_saved_at_every_window(self, result):
        for window, saving in result.data["savings"].items():
            assert saving > 0.0, f"window {window} saved nothing"

    def test_throughput_nearly_unchanged(self, result):
        baseline = result.data["baseline_throughput_mbps"]
        for window, throughput in result.data["edvs_throughput_mbps"].items():
            assert throughput >= baseline * 0.95

    def test_tx_mes_never_scale(self, result):
        for window, changes in result.data["tx_me_freq_changes"].items():
            assert changes == [0, 0]


class TestIdleExperiment:
    def test_bimodal_rx_unimodal_tx(self):
        result = run_experiment("idle", profile="bench")
        rx = result.data["rx"]
        tx = result.data["tx"]
        # Transmit MEs: almost always under 5% idle.
        assert tx["<5%"] > 0.9
        # Receive MEs: two modes — the middle band is the smallest.
        assert rx["5-30%"] < rx["<5%"] + rx[">=30%"]
        assert rx[">=30%"] > 0.1


class TestAblations:
    def test_penalty_sweep_monotone_loss(self):
        result = run_experiment("abl-penalty", profile="bench")
        losses = [result.data[p]["loss"] for p in (0.0, 10.0, 20.0)]
        assert losses[0] <= losses[1] <= losses[2]
        # Zero penalty: transitions are free, so throughput stays high.
        assert result.data[0.0]["throughput_mbps"] >= result.data[20.0][
            "throughput_mbps"
        ]

    def test_polling_ablation_changes_edvs_behaviour(self):
        result = run_experiment("abl-polling", profile="bench")
        paper = result.data["busy (paper)"]
        ablated = result.data["idle"]
        assert paper["transitions"] == 0
        assert ablated["transitions"] > 0
        assert ablated["power_w"] < paper["power_w"]
        assert ablated["min_freq_mhz"] == 400.0

    def test_hysteresis_reduces_transitions(self):
        result = run_experiment("abl-hysteresis", profile="bench")
        assert (
            result.data[0.2]["transitions"] < result.data[0.0]["transitions"]
        )
