"""Fast-path equivalence tests: materialized / fused step execution.

The microengine materializes a pure app's step stream at packet bind
(list iteration instead of generator resumption) and, by default, fuses
adjacent computes into one relay-executed block.  These tests pin the
contract at two levels: per-ME observables — completion times,
instruction counts, state totals, kernel seq layout — are identical to
lazy unfused execution, including under stalls, frequency changes and
runs that end mid-block; and full-system study JSON is byte-identical
fused vs unfused across the scenario catalog, the execution backends
and both monitor modes (the tie-ordering wall behind flipping fusion on
by default).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MemoryConfig
from repro.loc.monitor import MONITOR_MODE_ENV_VAR
from repro.npu.memqueue import build_memories
from repro.npu.microengine import (
    BUSY,
    FUSE_ENV_VAR,
    IDLE,
    STALLED,
    Microengine,
    fusion_enabled,
)
from repro.npu.steps import Compute, FusedCompute, MemRead, materialize_steps
from repro.scenarios import list_scenarios
from repro.sim.clock import ClockDomain
from repro.sim.kernel import Simulator
from repro.studies import StudySpec, run_study
from repro.studies.report import render_json
from repro.units import mhz

from test_microengine import ListSource
from test_traffic import make_packet


def fusable_steps(packet):
    """Irregular compute runs around a memory reference."""
    yield Compute(101)
    yield Compute(203)
    yield Compute(307)
    yield MemRead("sram", 8)
    yield Compute(53)
    yield Compute(71)


def run_me(
    materialize,
    fuse=False,
    perturb=None,
    until=60_000_000,
    npackets=4,
    steps_fn=fusable_steps,
    num_threads=4,
    ctx_switch_cycles=1,
    resume_until=None,
):
    sim = Simulator()
    clock = ClockDomain(sim, mhz(600), "me0")
    sram, sdram, scratch, _ = build_memories(sim, MemoryConfig())
    memories = {"sram": sram, "sdram": sdram, "scratch": scratch}
    done = []
    packets = [make_packet(seq=k) for k in range(npackets)]
    me = Microengine(
        sim,
        clock,
        0,
        "rx",
        ListSource(packets),
        steps_fn,
        memories,
        num_threads=num_threads,
        ctx_switch_cycles=ctx_switch_cycles,
        on_packet_done=lambda p: done.append(sim.now_ps),
        materialize=materialize,
        fuse=fuse,
    )
    me.start()
    if perturb is not None:
        perturb(sim, me)
    sim.run(until_ps=until)
    snapshot = {
        "done": list(done),
        "instructions": me.instructions_executed,
        "packets": me.packets_processed,
        "polls": me.polls,
        "mem_accesses": me.mem_accesses,
        "totals": dict(me.states.totals_ps()),
        # The tie-ordering contract in its rawest form: fused and
        # unfused execution must draw exactly the same kernel sequence
        # numbers and deliver the same number of events.
        "kernel_seqs": sim._seq,
        "events_executed": sim.events_executed,
    }
    if resume_until is not None:
        sim.run(until_ps=resume_until)
        snapshot["final_done"] = list(done)
        snapshot["final_instructions"] = me.instructions_executed
        snapshot["final_totals"] = dict(me.states.totals_ps())
    return snapshot


def assert_equivalent(perturb=None, until=60_000_000, resume_until=None):
    lazy = run_me(
        materialize=False, perturb=perturb, until=until, resume_until=resume_until
    )
    fused = run_me(
        materialize=True,
        fuse=True,
        perturb=perturb,
        until=until,
        resume_until=resume_until,
    )
    assert fused == lazy


class TestMaterializedEquivalence:
    def test_materialize_without_fuse_is_identical(self):
        lazy = run_me(materialize=False)
        listed = run_me(materialize=True, fuse=False)
        assert listed == lazy

    def test_fused_plain_run(self):
        assert_equivalent()

    def test_fused_with_stall_mid_block(self):
        # 400_000 ps lands inside the second compute of the first block.
        def perturb(sim, me):
            sim.schedule_at(400_000, me.stall_for, 2_000_000)

        assert_equivalent(perturb=perturb)

    def test_fused_with_frequency_change_mid_block(self):
        def perturb(sim, me):
            sim.schedule_at(400_000, me.set_vf, mhz(300), 1.0)

        assert_equivalent(perturb=perturb)

    def test_fused_with_vf_change_and_penalty_mid_block(self):
        # The governor pattern: retune, then freeze for the transition.
        def perturb(sim, me):
            def transition():
                me.set_vf(mhz(400), 1.1)
                me.stall_for(1_500_000)

            sim.schedule_at(400_000, transition)

        assert_equivalent(perturb=perturb)

    def test_fused_run_ending_mid_block_settles_counters(self):
        # 450_000 ps is inside the third compute of the first block; the
        # run-end settle must refund un-started parts and the resumed run
        # must land on exactly the lazy timeline.
        assert_equivalent(until=450_000, resume_until=60_000_000)

    def test_fused_stop_mid_block_keeps_charges(self):
        def perturb(sim, me):
            sim.schedule_at(400_000, sim.stop)

        assert_equivalent(perturb=perturb, until=60_000_000)


class TestMaterializeSteps:
    def test_fuses_adjacent_computes(self):
        steps = materialize_steps(fusable_steps(make_packet()))
        kinds = [type(s).__name__ for s in steps]
        assert kinds == ["FusedCompute", "MemRead", "FusedCompute"]
        assert steps[0].parts == (101, 203, 307)
        assert steps[0].instructions == 611
        assert steps[2].parts == (53, 71)

    def test_single_computes_stay_unfused(self):
        def stream():
            yield Compute(10)
            yield MemRead("sram", 4)
            yield Compute(20)

        steps = materialize_steps(stream())
        assert [type(s).__name__ for s in steps] == [
            "Compute",
            "MemRead",
            "Compute",
        ]

    def test_fuse_false_preserves_objects(self):
        original = list(fusable_steps(make_packet()))
        steps = materialize_steps(iter(original), fuse=False)
        assert steps == original

    def test_fused_compute_validates_parts(self):
        from repro.errors import NpuError

        with pytest.raises(NpuError):
            FusedCompute((5,))
        with pytest.raises(NpuError):
            FusedCompute((5, 0))


class TestAccountingBugfixes:
    def test_no_ctx_switch_charge_when_no_ready_thread(self):
        """Idle windows start at the memory-issue instant.

        With a single thread blocking on memory there is nothing to
        switch to: the engine must account IDLE from the issue itself,
        not one context-switch delay later.
        """

        def steps(packet):
            yield MemRead("sdram", 2048)

        result = run_me(
            materialize=False,
            steps_fn=steps,
            num_threads=1,
            npackets=1,
            until=50_000,
        )
        assert result["totals"].get(IDLE, 0) == 50_000
        assert result["totals"].get(BUSY, 0) == 0

    def test_idle_window_fraction_is_full_during_lone_memory_wait(self):
        sim = Simulator()
        clock = ClockDomain(sim, mhz(600), "me0")
        sram, sdram, scratch, _ = build_memories(sim, MemoryConfig())
        memories = {"sram": sram, "sdram": sdram, "scratch": scratch}

        def steps(packet):
            yield MemRead("sdram", 2048)

        me = Microengine(
            sim,
            clock,
            0,
            "rx",
            ListSource([make_packet()]),
            steps,
            memories,
            num_threads=1,
        )
        me.start()
        sim.run(until_ps=50_000)
        assert me.idle_fraction_window() == pytest.approx(1.0)

    def test_stall_mid_compute_stays_busy_until_completion(self):
        """A memory response during a stall must not mark a computing
        engine STALLED: the in-flight compute runs to completion and
        only then does the thread park."""

        packets = [make_packet(seq=0), make_packet(seq=1)]

        def steps(packet):
            if packet.seq == 0:
                yield MemRead("sdram", 2048)  # completes ~4 us in
            else:
                yield Compute(60_000)  # 100 us at 600 MHz

        sim = Simulator()
        clock = ClockDomain(sim, mhz(600), "me0")
        sram, sdram, scratch, _ = build_memories(sim, MemoryConfig())
        memories = {"sram": sram, "sdram": sdram, "scratch": scratch}
        me = Microengine(
            sim,
            clock,
            0,
            "rx",
            ListSource(packets),
            steps,
            memories,
            num_threads=2,
        )
        me.start()
        # Stall begins at 1 us — inside the 100 us compute — and the
        # SDRAM response lands during both the stall and the compute.
        sim.schedule_at(1_000_000, me.stall_for, 300_000_000)
        sim.run(until_ps=150_000_000)
        totals = me.states.totals_ps()
        assert totals.get(BUSY, 0) >= 100_000_000
        assert me.states.state == STALLED


# ---------------------------------------------------------------------------
# Full-system tie-ordering wall
# ---------------------------------------------------------------------------

#: The four catalog scenarios whose seq layout diverged under the old
#: block-fusion scheme — the regression-sensitive subset run in the fast
#: lane.  The full catalog and the backend / monitor-mode cross products
#: run in the slow lane.
DIVERGER_SCENARIOS = ("ddos_min64", "imix_drift", "link_failover", "weekend_diurnal")


def catalog_study_json(
    monkeypatch, scenarios, fuse, backend=None, workers=1, monitor_mode=None
):
    """Render the study-report JSON for ``scenarios`` under one fusion
    setting, using the short deterministic grid from the backend tests."""
    monkeypatch.setenv(FUSE_ENV_VAR, "on" if fuse else "off")
    if monitor_mode is None:
        monkeypatch.delenv(MONITOR_MODE_ENV_VAR, raising=False)
    else:
        monkeypatch.setenv(MONITOR_MODE_ENV_VAR, monitor_mode)
    spec = StudySpec(
        scenarios=tuple(scenarios),
        policies=("tdvs", "edvs"),
        thresholds_mbps=(1200.0,),
        windows_cycles=(40_000,),
        duration_cycles=120_000,
        span=20,
        seeds=(11,),
    )
    spec.validate()
    if backend is not None:
        result = run_study(spec, backend=backend)
    else:
        result = run_study(spec, workers=workers)
    return render_json(result.policy_map)


class TestFullSystemTieOrdering:
    """Fused execution is a pure speed change: the rendered study JSON —
    every counter, timestamp and derived metric — is byte-identical to
    unfused execution, in every scenario, on every backend, in both
    monitor modes."""

    def test_fusion_default_is_on(self, monkeypatch):
        monkeypatch.delenv(FUSE_ENV_VAR, raising=False)
        assert fusion_enabled() is True
        monkeypatch.setenv(FUSE_ENV_VAR, "off")
        assert fusion_enabled() is False

    def test_diverger_scenarios_byte_identical_serial(self, monkeypatch):
        for scenario in DIVERGER_SCENARIOS:
            fused = catalog_study_json(monkeypatch, (scenario,), fuse=True)
            unfused = catalog_study_json(monkeypatch, (scenario,), fuse=False)
            assert fused == unfused, scenario

    @pytest.mark.slow
    def test_full_catalog_byte_identical_serial(self, monkeypatch):
        names = tuple(list_scenarios())
        assert len(names) == 9
        fused = catalog_study_json(monkeypatch, names, fuse=True)
        unfused = catalog_study_json(monkeypatch, names, fuse=False)
        assert fused == unfused

    @pytest.mark.slow
    def test_process_backend_fused_matches_serial_unfused(self, monkeypatch):
        from repro.backends import ProcessBackend

        serial_unfused = catalog_study_json(
            monkeypatch, ("ddos_min64",), fuse=False
        )
        pool_fused = catalog_study_json(
            monkeypatch,
            ("ddos_min64",),
            fuse=True,
            backend=ProcessBackend(workers=2),
        )
        assert pool_fused == serial_unfused

    @pytest.mark.slow
    def test_distributed_backend_fused_matches_serial_unfused(self, monkeypatch):
        from repro.backends import DistributedBackend

        from test_backends import start_worker

        serial_unfused = catalog_study_json(
            monkeypatch, ("link_failover",), fuse=False
        )
        backend = DistributedBackend(port=0)
        workers = [start_worker(backend.address) for _ in range(2)]
        distributed_fused = catalog_study_json(
            monkeypatch, ("link_failover",), fuse=True, backend=backend
        )
        for worker in workers:
            worker.join(timeout=60)
        assert distributed_fused == serial_unfused

    def test_monitor_modes_byte_identical(self, monkeypatch):
        renders = {
            (fuse, mode): catalog_study_json(
                monkeypatch, ("weekend_diurnal",), fuse=fuse, monitor_mode=mode
            )
            for fuse in (False, True)
            for mode in ("compiled", "interpreted")
        }
        baseline = renders[(False, "compiled")]
        for key, render in renders.items():
            assert render == baseline, key


class TestFusedSeqLayoutProperty:
    """Hypothesis wall: under *any* schedule of stalls and V-F changes,
    fused execution draws exactly the unfused kernel seq layout."""

    @given(
        schedule=st.lists(
            st.tuples(
                st.integers(min_value=10_000, max_value=40_000_000),
                st.sampled_from(("stall", "vf", "both")),
                st.integers(min_value=100_000, max_value=5_000_000),
                st.sampled_from((200, 300, 450, 600)),
            ),
            max_size=6,
        )
    )
    @settings(deadline=None, max_examples=25)
    def test_randomized_stall_vf_schedules_preserve_seq_layout(self, schedule):
        def perturb(sim, me):
            for when_ps, kind, stall_ps, freq in schedule:
                if kind in ("vf", "both"):
                    sim.schedule_at(when_ps, me.set_vf, mhz(freq), 1.0)
                if kind in ("stall", "both"):
                    sim.schedule_at(when_ps, me.stall_for, stall_ps)

        lazy = run_me(materialize=False, perturb=perturb)
        fused = run_me(materialize=True, fuse=True, perturb=perturb)
        assert fused == lazy
