"""Fast-path equivalence tests: materialized / fused step execution.

The microengine may materialize a pure app's step stream at packet bind
(list iteration instead of generator resumption) and, opted in, fuse
adjacent computes into one completion event.  These tests pin the
contract: per-ME observables — completion times, instruction counts,
state totals — are identical to lazy unfused execution, including under
stalls, frequency changes and runs that end mid-block.
"""

import pytest

from repro.config import MemoryConfig
from repro.npu.memqueue import build_memories
from repro.npu.microengine import BUSY, IDLE, STALLED, Microengine
from repro.npu.steps import Compute, FusedCompute, MemRead, materialize_steps
from repro.sim.clock import ClockDomain
from repro.sim.kernel import Simulator
from repro.units import mhz

from test_microengine import ListSource
from test_traffic import make_packet


def fusable_steps(packet):
    """Irregular compute runs around a memory reference."""
    yield Compute(101)
    yield Compute(203)
    yield Compute(307)
    yield MemRead("sram", 8)
    yield Compute(53)
    yield Compute(71)


def run_me(
    materialize,
    fuse=False,
    perturb=None,
    until=60_000_000,
    npackets=4,
    steps_fn=fusable_steps,
    num_threads=4,
    ctx_switch_cycles=1,
    resume_until=None,
):
    sim = Simulator()
    clock = ClockDomain(sim, mhz(600), "me0")
    sram, sdram, scratch, _ = build_memories(sim, MemoryConfig())
    memories = {"sram": sram, "sdram": sdram, "scratch": scratch}
    done = []
    packets = [make_packet(seq=k) for k in range(npackets)]
    me = Microengine(
        sim,
        clock,
        0,
        "rx",
        ListSource(packets),
        steps_fn,
        memories,
        num_threads=num_threads,
        ctx_switch_cycles=ctx_switch_cycles,
        on_packet_done=lambda p: done.append(sim.now_ps),
        materialize=materialize,
        fuse=fuse,
    )
    me.start()
    if perturb is not None:
        perturb(sim, me)
    sim.run(until_ps=until)
    snapshot = {
        "done": list(done),
        "instructions": me.instructions_executed,
        "packets": me.packets_processed,
        "polls": me.polls,
        "mem_accesses": me.mem_accesses,
        "totals": dict(me.states.totals_ps()),
    }
    if resume_until is not None:
        sim.run(until_ps=resume_until)
        snapshot["final_done"] = list(done)
        snapshot["final_instructions"] = me.instructions_executed
        snapshot["final_totals"] = dict(me.states.totals_ps())
    return snapshot


def assert_equivalent(perturb=None, until=60_000_000, resume_until=None):
    lazy = run_me(
        materialize=False, perturb=perturb, until=until, resume_until=resume_until
    )
    fused = run_me(
        materialize=True,
        fuse=True,
        perturb=perturb,
        until=until,
        resume_until=resume_until,
    )
    assert fused == lazy


class TestMaterializedEquivalence:
    def test_materialize_without_fuse_is_identical(self):
        lazy = run_me(materialize=False)
        listed = run_me(materialize=True, fuse=False)
        assert listed == lazy

    def test_fused_plain_run(self):
        assert_equivalent()

    def test_fused_with_stall_mid_block(self):
        # 400_000 ps lands inside the second compute of the first block.
        def perturb(sim, me):
            sim.schedule_at(400_000, me.stall_for, 2_000_000)

        assert_equivalent(perturb=perturb)

    def test_fused_with_frequency_change_mid_block(self):
        def perturb(sim, me):
            sim.schedule_at(400_000, me.set_vf, mhz(300), 1.0)

        assert_equivalent(perturb=perturb)

    def test_fused_with_vf_change_and_penalty_mid_block(self):
        # The governor pattern: retune, then freeze for the transition.
        def perturb(sim, me):
            def transition():
                me.set_vf(mhz(400), 1.1)
                me.stall_for(1_500_000)

            sim.schedule_at(400_000, transition)

        assert_equivalent(perturb=perturb)

    def test_fused_run_ending_mid_block_settles_counters(self):
        # 450_000 ps is inside the third compute of the first block; the
        # run-end settle must refund un-started parts and the resumed run
        # must land on exactly the lazy timeline.
        assert_equivalent(until=450_000, resume_until=60_000_000)

    def test_fused_stop_mid_block_keeps_charges(self):
        def perturb(sim, me):
            sim.schedule_at(400_000, sim.stop)

        assert_equivalent(perturb=perturb, until=60_000_000)


class TestMaterializeSteps:
    def test_fuses_adjacent_computes(self):
        steps = materialize_steps(fusable_steps(make_packet()))
        kinds = [type(s).__name__ for s in steps]
        assert kinds == ["FusedCompute", "MemRead", "FusedCompute"]
        assert steps[0].parts == (101, 203, 307)
        assert steps[0].instructions == 611
        assert steps[2].parts == (53, 71)

    def test_single_computes_stay_unfused(self):
        def stream():
            yield Compute(10)
            yield MemRead("sram", 4)
            yield Compute(20)

        steps = materialize_steps(stream())
        assert [type(s).__name__ for s in steps] == [
            "Compute",
            "MemRead",
            "Compute",
        ]

    def test_fuse_false_preserves_objects(self):
        original = list(fusable_steps(make_packet()))
        steps = materialize_steps(iter(original), fuse=False)
        assert steps == original

    def test_fused_compute_validates_parts(self):
        from repro.errors import NpuError

        with pytest.raises(NpuError):
            FusedCompute((5,))
        with pytest.raises(NpuError):
            FusedCompute((5, 0))


class TestAccountingBugfixes:
    def test_no_ctx_switch_charge_when_no_ready_thread(self):
        """Idle windows start at the memory-issue instant.

        With a single thread blocking on memory there is nothing to
        switch to: the engine must account IDLE from the issue itself,
        not one context-switch delay later.
        """

        def steps(packet):
            yield MemRead("sdram", 2048)

        result = run_me(
            materialize=False,
            steps_fn=steps,
            num_threads=1,
            npackets=1,
            until=50_000,
        )
        assert result["totals"].get(IDLE, 0) == 50_000
        assert result["totals"].get(BUSY, 0) == 0

    def test_idle_window_fraction_is_full_during_lone_memory_wait(self):
        sim = Simulator()
        clock = ClockDomain(sim, mhz(600), "me0")
        sram, sdram, scratch, _ = build_memories(sim, MemoryConfig())
        memories = {"sram": sram, "sdram": sdram, "scratch": scratch}

        def steps(packet):
            yield MemRead("sdram", 2048)

        me = Microengine(
            sim,
            clock,
            0,
            "rx",
            ListSource([make_packet()]),
            steps,
            memories,
            num_threads=1,
        )
        me.start()
        sim.run(until_ps=50_000)
        assert me.idle_fraction_window() == pytest.approx(1.0)

    def test_stall_mid_compute_stays_busy_until_completion(self):
        """A memory response during a stall must not mark a computing
        engine STALLED: the in-flight compute runs to completion and
        only then does the thread park."""

        packets = [make_packet(seq=0), make_packet(seq=1)]

        def steps(packet):
            if packet.seq == 0:
                yield MemRead("sdram", 2048)  # completes ~4 us in
            else:
                yield Compute(60_000)  # 100 us at 600 MHz

        sim = Simulator()
        clock = ClockDomain(sim, mhz(600), "me0")
        sram, sdram, scratch, _ = build_memories(sim, MemoryConfig())
        memories = {"sram": sram, "sdram": sdram, "scratch": scratch}
        me = Microengine(
            sim,
            clock,
            0,
            "rx",
            ListSource(packets),
            steps,
            memories,
            num_threads=2,
        )
        me.start()
        # Stall begins at 1 us — inside the 100 us compute — and the
        # SDRAM response lands during both the stall and the compute.
        sim.schedule_at(1_000_000, me.stall_for, 300_000_000)
        sim.run(until_ps=150_000_000)
        totals = me.states.totals_ps()
        assert totals.get(BUSY, 0) >= 100_000_000
        assert me.states.state == STALLED
