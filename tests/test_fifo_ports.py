"""Tests for packet queues, transmit rings and the port array."""

import pytest

from repro.config import MemoryConfig
from repro.errors import NpuError
from repro.npu.fifo import PacketQueue, TxRing
from repro.npu.memqueue import build_memories
from repro.npu.ports import PortArray
from repro.sim.kernel import Simulator

from test_traffic import make_packet


class TestPacketQueue:
    def test_fifo_order(self):
        queue = PacketQueue(4)
        for k in range(3):
            assert queue.offer(make_packet(seq=k))
        assert [queue.poll().seq for _ in range(3)] == [0, 1, 2]
        assert queue.poll() is None

    def test_drop_on_full(self):
        queue = PacketQueue(2)
        assert queue.offer(make_packet(seq=0))
        assert queue.offer(make_packet(seq=1))
        assert not queue.offer(make_packet(seq=2))
        assert queue.dropped == 1
        assert queue.enqueued == 2

    def test_max_depth_tracked(self):
        queue = PacketQueue(8)
        for k in range(5):
            queue.offer(make_packet(seq=k))
        queue.poll()
        assert queue.max_depth == 5

    def test_zero_capacity_rejected(self):
        with pytest.raises(NpuError):
            PacketQueue(0)


class TestTxRing:
    def test_unbounded_fifo(self):
        ring = TxRing()
        for k in range(100):
            ring.put(make_packet(seq=k))
        assert len(ring) == 100
        assert ring.poll().seq == 0
        assert ring.max_depth == 100


def build_ports(sim, num_ports=4, rx_queue=2, rate=1e9, hooks=None):
    _, _, _, ixbus = build_memories(sim, MemoryConfig())
    hooks = hooks or {}
    return PortArray(
        sim, num_ports, rate, rx_queue, ixbus,
        on_arrival=hooks.get("arrival"),
        on_enqueued=hooks.get("enqueued"),
        on_forward=hooks.get("forward"),
    )


class TestPortArray:
    def test_deliver_enqueues_after_bus(self):
        sim = Simulator()
        enqueued = []
        ports = build_ports(sim, hooks={"enqueued": enqueued.append})
        packet = make_packet()
        ports.deliver(0, packet)
        assert len(ports[0].rx_queue) == 0  # still crossing the bus
        sim.run()
        assert len(ports[0].rx_queue) == 1
        assert enqueued == [packet]

    def test_arrival_hook_fires_before_queueing(self):
        sim = Simulator()
        arrivals = []
        ports = build_ports(sim, hooks={"arrival": arrivals.append})
        packet = make_packet()
        ports.deliver(1, packet)
        assert arrivals == [packet]  # immediately, not after the bus

    def test_admission_drop_when_queue_full(self):
        sim = Simulator()
        ports = build_ports(sim, rx_queue=2)
        for k in range(4):
            ports.deliver(0, make_packet(seq=k))
        sim.run()
        assert ports.rx_dropped == 2
        assert len(ports[0].rx_queue) == 2

    def test_in_flight_reservation_counts_toward_admission(self):
        sim = Simulator()
        ports = build_ports(sim, rx_queue=1)
        ports.deliver(0, make_packet(seq=0))
        ports.deliver(0, make_packet(seq=1))  # queue empty but slot reserved
        assert ports.rx_dropped == 1
        sim.run()
        assert len(ports[0].rx_queue) == 1

    def test_transmit_serialization_and_forward_hook(self):
        sim = Simulator()
        forwarded = []
        ports = build_ports(sim, rate=1e9,
                            hooks={"forward": lambda p: forwarded.append(sim.now_ps)})
        a = make_packet(seq=0, size=1000, output_port=0)
        b = make_packet(seq=1, size=1000, output_port=0)
        ports.transmit(a)
        ports.transmit(b)
        sim.run()
        # 1000 bytes at 1 Gbps = 8 us each, back to back.
        assert forwarded == [8_000_000, 16_000_000]

    def test_transmit_uses_input_port_as_default(self):
        sim = Simulator()
        ports = build_ports(sim)
        packet = make_packet(input_port=2, output_port=None)
        ports.transmit(packet)
        sim.run()
        assert ports[2].tx_packets == 1

    def test_tx_counters(self):
        sim = Simulator()
        ports = build_ports(sim)
        packet = make_packet(size=500, output_port=1)
        ports.transmit(packet)
        sim.run()
        assert ports.total_tx_packets == 1
        assert ports.total_tx_bits == 4000
