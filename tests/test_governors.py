"""Tests for the TDVS and EDVS governors (integration with the chip)."""

import pytest

from repro.config import DvsConfig, TrafficConfig
from repro.runner import SimulationRun, run_simulation
from repro.units import mhz

from conftest import quick_config


def run_quick(**overrides):
    return run_simulation(quick_config(**overrides))


class TestTdvs:
    def test_low_traffic_scales_to_bottom(self):
        result = run_quick(
            duration_cycles=400_000,
            traffic=TrafficConfig(offered_load_mbps=100.0, process="cbr"),
            dvs=DvsConfig(policy="tdvs", window_cycles=20_000,
                          top_threshold_mbps=1000.0),
        )
        for me in result.totals.me_summaries:
            assert me.freq_mhz == 400.0
        assert result.governor_transitions >= 4  # walked the ladder down

    def test_high_traffic_stays_at_top(self):
        # 80k windows average ~78 packets, so sampling noise cannot dip
        # the measured rate below the 1000 Mbps threshold at 1600 Mbps.
        result = run_quick(
            duration_cycles=800_000,
            traffic=TrafficConfig(offered_load_mbps=1600.0, process="cbr"),
            dvs=DvsConfig(policy="tdvs", window_cycles=80_000,
                          top_threshold_mbps=1000.0),
        )
        for me in result.totals.me_summaries:
            assert me.freq_mhz == 600.0
        assert result.governor_transitions == 0

    def test_small_windows_flap_from_sampling_noise(self):
        """~20 packets per 20k window -> occasional sub-threshold samples.

        This is the mechanism behind the paper's small-window penalty
        overhead: the same offered load triggers transitions at 20k
        windows that 80k windows never see.
        """
        result = run_quick(
            duration_cycles=800_000,
            traffic=TrafficConfig(offered_load_mbps=1600.0, process="cbr"),
            dvs=DvsConfig(policy="tdvs", window_cycles=20_000,
                          top_threshold_mbps=1000.0),
        )
        assert result.governor_transitions > 0

    def test_all_mes_share_the_vf_level(self):
        result = run_quick(
            duration_cycles=400_000,
            traffic=TrafficConfig(offered_load_mbps=700.0, process="cbr"),
            dvs=DvsConfig(policy="tdvs", window_cycles=20_000,
                          top_threshold_mbps=1000.0),
        )
        freqs = {me.freq_mhz for me in result.totals.me_summaries}
        assert len(freqs) == 1

    def test_saves_power_vs_baseline(self):
        traffic = TrafficConfig(offered_load_mbps=400.0, process="cbr")
        baseline = run_quick(duration_cycles=600_000, traffic=traffic)
        scaled = run_quick(
            duration_cycles=600_000,
            traffic=traffic,
            dvs=DvsConfig(policy="tdvs", window_cycles=20_000,
                          top_threshold_mbps=1200.0),
        )
        assert scaled.mean_power_w < baseline.mean_power_w * 0.9

    def test_windows_counted(self):
        result = run_quick(
            duration_cycles=400_000,
            dvs=DvsConfig(policy="tdvs", window_cycles=40_000),
        )
        # The final boundary may land a few picoseconds past the run end
        # due to period rounding, so 9 or 10 windows are both correct.
        assert result.governor_windows in (9, 10)

    def test_monitor_overhead_small_but_positive(self):
        result = run_quick(
            duration_cycles=400_000,
            dvs=DvsConfig(policy="tdvs", window_cycles=40_000),
        )
        assert 0 < result.dvs_overhead_w < 0.01 * result.mean_power_w

    def test_hysteresis_reduces_transitions(self):
        traffic = TrafficConfig(offered_load_mbps=1000.0, process="poisson")
        kwargs = dict(policy="tdvs", window_cycles=20_000, top_threshold_mbps=1000.0)
        plain = run_quick(duration_cycles=600_000, traffic=traffic,
                          dvs=DvsConfig(**kwargs))
        damped = run_quick(duration_cycles=600_000, traffic=traffic,
                           dvs=DvsConfig(**kwargs, tdvs_hysteresis=0.3))
        assert damped.governor_transitions < plain.governor_transitions


class TestEdvs:
    def test_mes_scale_independently(self):
        run = SimulationRun(quick_config(
            duration_cycles=800_000,
            traffic=TrafficConfig(offered_load_mbps=1550.0, process="cbr"),
            dvs=DvsConfig(policy="edvs", window_cycles=20_000),
        ))
        result = run.run()
        governor = run.governor
        assert governor is not None
        # Per-ME levels exist and are tracked individually.
        assert set(governor.levels) == {me.index for me in result.totals.me_summaries}

    def test_transmit_mes_never_scale_down(self):
        result = run_quick(
            duration_cycles=800_000,
            traffic=TrafficConfig(offered_load_mbps=1550.0, process="cbr"),
            dvs=DvsConfig(policy="edvs", window_cycles=20_000),
        )
        for me in result.totals.me_summaries:
            if me.role == "tx":
                assert me.freq_mhz == 600.0
                assert me.freq_changes == 0

    def test_busy_polling_mes_stay_at_top_at_low_traffic(self):
        result = run_quick(
            duration_cycles=600_000,
            traffic=TrafficConfig(offered_load_mbps=100.0, process="cbr"),
            dvs=DvsConfig(policy="edvs", window_cycles=20_000),
        )
        # Polling counts as busy: no ME sees idle above the threshold.
        for me in result.totals.me_summaries:
            assert me.freq_mhz == 600.0
        assert result.governor_transitions == 0

    def test_poll_as_idle_ablation_scales_down_at_low_traffic(self):
        from repro.config import NpuConfig

        result = run_quick(
            duration_cycles=600_000,
            npu=NpuConfig(poll_counts_as_idle=True),
            traffic=TrafficConfig(offered_load_mbps=100.0, process="cbr"),
            dvs=DvsConfig(policy="edvs", window_cycles=20_000),
        )
        assert result.governor_transitions > 0
        assert min(me.freq_mhz for me in result.totals.me_summaries) == 400.0

    def test_policy_none_has_no_governor(self):
        run = SimulationRun(quick_config())
        assert run.governor is None
        result = run.run()
        assert result.governor_transitions == 0
