"""Tests for the memory store, ISA, assembler and interpreter."""

import pytest

from repro.errors import AssemblerError, IsaError, MemoryModelError
from repro.npu.assembler import assemble
from repro.npu.interpreter import Interpreter
from repro.npu.isa import Instruction, Program, validate_instruction
from repro.npu.memstore import MemStore
from repro.npu.steps import Compute, Drop, MemRead, MemWrite, PutTx

from test_traffic import make_packet


def stores():
    return {
        "sram": MemStore("sram", 1 << 20),
        "sdram": MemStore("sdram", 1 << 24),
        "scratch": MemStore("scratch", 1 << 14),
    }


def run_program(source, packet=None, mem=None):
    """Assemble and fully execute a program; return (steps, stores, pkt)."""
    program = assemble(source)
    mem = mem or stores()
    interpreter = Interpreter(program, mem)
    packet = packet or make_packet()
    steps = list(interpreter.steps_for_packet(packet))
    return steps, mem, packet


class TestMemStore:
    def test_word_round_trip(self):
        store = MemStore("m", 1024)
        store.write_word(8, 0xDEADBEEF)
        assert store.read_word(8) == 0xDEADBEEF
        assert store.read_word(12) == 0  # unwritten reads zero

    def test_unaligned_and_oob_rejected(self):
        store = MemStore("m", 64)
        with pytest.raises(MemoryModelError):
            store.read_word(2)
        with pytest.raises(MemoryModelError):
            store.write_word(64, 1)

    def test_byte_access_round_trip(self):
        store = MemStore("m", 1024)
        data = bytes(range(13))
        store.write_bytes(3, data)
        assert store.read_bytes(3, 13) == data

    def test_bytes_and_words_consistent(self):
        store = MemStore("m", 64)
        store.write_bytes(0, (0x04030201).to_bytes(4, "little"))
        assert store.read_word(0) == 0x04030201


class TestIsaValidation:
    def test_unknown_opcode(self):
        with pytest.raises(IsaError):
            validate_instruction(Instruction("jmp", (0,)))

    def test_bad_register(self):
        with pytest.raises(IsaError):
            validate_instruction(Instruction("mov", (99, 0)))

    def test_bad_alu_subop(self):
        with pytest.raises(IsaError):
            validate_instruction(Instruction("alu", ("rot", 0, 1, 2)))

    def test_branch_target_bounds(self):
        instrs = [Instruction("br", (5,)), Instruction("done", ())]
        with pytest.raises(IsaError):
            Program("p", instrs)

    def test_empty_program_rejected(self):
        with pytest.raises(IsaError):
            Program("p", [])

    def test_disassemble_lists_labels(self):
        program = assemble("start:\n  nop\n  br start\n  done")
        text = program.disassemble()
        assert "start:" in text
        assert "nop" in text


class TestAssembler:
    def test_labels_and_branches(self):
        program = assemble("""
            li r1, 3
        loop:
            sub r1, r1, 1
            bne r1, zero, loop
            done
        """)
        assert program.labels["loop"] == 1
        assert program[2].opcode == "bcond"
        assert program[2].operands[-1] == 1

    def test_equ_constants(self):
        program = assemble("""
            .equ BASE, 0x100
            .equ NEXT, 0x104
            li r1, BASE
            li r2, NEXT
            done
        """)
        assert program[0].operands[1] == 0x100
        assert program[1].operands[1] == 0x104

    def test_mnemonic_expansion(self):
        program = assemble("""
            add r1, r2, r3
            add r1, r2, 7
            beq r1, zero, end
        end:
            done
        """)
        assert program[0].opcode == "alu"
        assert program[1].opcode == "alui"
        assert program[2].opcode == "bcond"

    def test_memory_aliases(self):
        program = assemble("""
            sram_rd r1, r2, 4
            sdram_wr r2, r1, 64
            scratch_wr r2, r1, 8
            sdram_post r2, 64
            done
        """)
        assert program[0].opcode == "mem_rd" and program[0].operands[0] == "sram"
        assert program[1].opcode == "mem_wr" and program[1].operands[0] == "sdram"
        assert program[3].opcode == "mem_post"

    def test_comments_and_name(self):
        program = assemble("""
            .name demo
            nop  ; trailing comment
            # whole-line comment
            done
        """)
        assert program.name == "demo"
        assert len(program) == 2

    def test_errors_carry_line_numbers(self):
        with pytest.raises(AssemblerError) as excinfo:
            assemble("nop\nbogus r1\ndone")
        assert "line 2" in str(excinfo.value)

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("x:\nnop\nx:\ndone")

    def test_unknown_register_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("mov r1, r99\ndone")


class TestInterpreter:
    def test_arithmetic_loop(self):
        # Sum 1..5 into r2, store to scratch, check the value.
        steps, mem, _ = run_program("""
            li r1, 5
            li r2, 0
        loop:
            add r2, r2, r1
            sub r1, r1, 1
            bne r1, zero, loop
            li r3, 0x40
            scratch_wr r3, r2, 4
            done
        """)
        assert mem["scratch"].read_word(0x40) == 15

    def test_one_compute_per_instruction(self):
        steps, _, _ = run_program("nop\nnop\nnop\ndone")
        computes = [s for s in steps if isinstance(s, Compute)]
        assert len(computes) == 4
        assert all(c.instructions == 1 for c in computes)

    def test_memory_steps_interleave_with_data(self):
        steps, mem, _ = run_program("""
            li r1, 0x10
            li r2, 77
            sram_wr r1, r2, 4
            sram_rd r3, r1, 4
            scratch_wr r1, r3, 4
            done
        """)
        assert any(isinstance(s, MemWrite) and s.target == "sram" for s in steps)
        assert any(isinstance(s, MemRead) and s.target == "sram" for s in steps)
        assert mem["scratch"].read_word(0x10) == 77

    def test_packet_registers_visible(self):
        packet = make_packet(size=500, input_port=9, flow_id=42)
        steps, mem, _ = run_program("""
            li r1, 0
            scratch_wr r1, pkt_size, 4
            li r1, 4
            scratch_wr r1, pkt_port, 4
            li r1, 8
            scratch_wr r1, pkt_flow, 4
            done
        """, packet=packet)
        assert mem["scratch"].read_word(0) == 500
        assert mem["scratch"].read_word(4) == 9
        assert mem["scratch"].read_word(8) == 42

    def test_zero_register_ignores_writes(self):
        steps, mem, _ = run_program("""
            li r1, 5
            mov zero, r1
            li r2, 0x20
            scratch_wr r2, zero, 4
            done
        """)
        assert mem["scratch"].read_word(0x20) == 0

    def test_set_out_port_and_puttx(self):
        packet = make_packet()
        steps, _, packet = run_program("""
            li r1, 11
            set_out_port r1
            puttx
            done
        """, packet=packet)
        assert packet.output_port == 11
        assert any(isinstance(s, PutTx) for s in steps)

    def test_drop_ends_program(self):
        steps, _, _ = run_program("drop 3\nnop\ndone")
        drops = [s for s in steps if isinstance(s, Drop)]
        assert len(drops) == 1
        assert drops[0].reason == "uc-3"
        # The nop after drop never runs: only 1 compute (the drop itself).
        assert sum(1 for s in steps if isinstance(s, Compute)) == 1

    def test_runaway_loop_guard(self):
        program = assemble("loop:\nbr loop\ndone")
        interpreter = Interpreter(program, stores(), max_instructions=500)
        with pytest.raises(IsaError):
            list(interpreter.steps_for_packet(make_packet()))

    def test_fall_off_end_rejected(self):
        program = assemble("nop\nnop")
        interpreter = Interpreter(program, stores())
        with pytest.raises(IsaError):
            list(interpreter.steps_for_packet(make_packet()))

    def test_hash_deterministic_and_mixing(self):
        steps, mem, _ = run_program("""
            hash r1, pkt_src, pkt_dst
            hash r2, pkt_src, pkt_dst
            li r3, 0
            scratch_wr r3, r1, 4
            li r3, 4
            scratch_wr r3, r2, 4
            done
        """)
        a = mem["scratch"].read_word(0)
        b = mem["scratch"].read_word(4)
        assert a == b
        assert a != 0

    def test_instruction_counters(self):
        program = assemble("nop\nnop\ndone")
        interpreter = Interpreter(program, stores())
        list(interpreter.steps_for_packet(make_packet()))
        list(interpreter.steps_for_packet(make_packet(seq=1)))
        assert interpreter.packets_run == 2
        assert interpreter.instructions_retired == 6
