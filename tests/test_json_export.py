"""Tests for JSON export of experiment results."""

import json

from repro.cli import main
from repro.experiments import run_experiment
from repro.experiments.registry import ExperimentResult


def test_tuple_keys_flatten():
    result = ExperimentResult(
        "x", "text", data={"grid": {(1400.0, 20_000): 0.9, (None, None): 1.2}}
    )
    data = result.json_data()
    assert data == {"grid": {"1400/20000": 0.9, "noDVS": 1.2}}


def test_nested_tuples_become_lists():
    result = ExperimentResult("x", "t", data={"argmin": (1400.0, 20_000, 0.99)})
    parsed = json.loads(result.to_json())
    assert parsed["data"]["argmin"] == [1400.0, 20_000, 0.99]
    assert parsed["experiment_id"] == "x"


def test_real_experiment_round_trips():
    result = run_experiment("fig05", profile="bench")
    parsed = json.loads(result.to_json())
    assert len(parsed["data"]["rows"]) == 5


def test_cli_json_flag(tmp_path, capsys):
    out = tmp_path / "fig05.json"
    assert main(["run", "fig05", "--json", "--out", str(out)]) == 0
    parsed = json.loads(out.read_text())
    assert parsed["experiment_id"] == "fig05"
