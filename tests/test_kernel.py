"""Tests for the event-driven simulation kernel."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim.kernel import Simulator


def test_initial_state():
    sim = Simulator()
    assert sim.now_ps == 0
    assert sim.pending_events == 0
    assert sim.events_executed == 0


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(300, order.append, "c")
    sim.schedule(100, order.append, "a")
    sim.schedule(200, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now_ps == 300


def test_same_time_events_run_in_scheduling_order():
    sim = Simulator()
    order = []
    for tag in "abcde":
        sim.schedule(50, order.append, tag)
    sim.run()
    assert order == list("abcde")


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule_at(1234, fired.append, 1)
    sim.run()
    assert fired == [1]
    assert sim.now_ps == 1234


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        sim.schedule(-1, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(100, lambda: None)
    sim.run()
    with pytest.raises(SchedulingError):
        sim.schedule_at(50, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(100, fired.append, "x")
    sim.schedule(50, event.cancel)
    sim.run()
    assert fired == []


def test_run_until_pauses_and_resumes():
    sim = Simulator()
    fired = []
    sim.schedule(100, fired.append, "a")
    sim.schedule(500, fired.append, "b")
    sim.run(until_ps=200)
    assert fired == ["a"]
    assert sim.now_ps == 200
    sim.run()
    assert fired == ["a", "b"]
    assert sim.now_ps == 500


def test_run_until_advances_time_even_without_events():
    sim = Simulator()
    sim.run(until_ps=9999)
    assert sim.now_ps == 9999


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(10, chain, n + 1)

    sim.schedule(0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now_ps == 30


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(10, fired.append, "a")
    sim.schedule(20, sim.stop)
    sim.schedule(30, fired.append, "b")
    sim.run()
    assert fired == ["a"]
    # A later run picks up where we left off.
    sim.run()
    assert fired == ["a", "b"]


def test_step_executes_one_event():
    sim = Simulator()
    fired = []
    sim.schedule(10, fired.append, 1)
    sim.schedule(20, fired.append, 2)
    assert sim.step() is True
    assert fired == [1]
    assert sim.step() is True
    assert sim.step() is False
    assert fired == [1, 2]


def test_peek_next_time_skips_cancelled():
    sim = Simulator()
    event = sim.schedule(10, lambda: None)
    sim.schedule(20, lambda: None)
    event.cancel()
    assert sim.peek_next_time() == 20


def test_reentrant_run_rejected():
    sim = Simulator()

    def nested():
        sim.run()

    sim.schedule(1, nested)
    with pytest.raises(SimulationError):
        sim.run()


def test_events_executed_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1, lambda: None)
    sim.run()
    assert sim.events_executed == 5


def test_event_args_passed_through():
    sim = Simulator()
    seen = []
    sim.schedule(1, lambda a, b, c: seen.append((a, b, c)), 1, "x", None)
    sim.run()
    assert seen == [(1, "x", None)]


def test_schedule_rounds_float_delay():
    """A float delay rounds to the nearest picosecond, never truncates."""
    sim = Simulator()
    fired = []
    sim.schedule(100.6, fired.append, "a")
    sim.run()
    assert fired == ["a"]
    assert sim.now_ps == 101


def test_schedule_at_rounds_float_time():
    sim = Simulator()
    fired = []
    sim.schedule_at(250.4, fired.append, "a")
    sim.run()
    assert fired == ["a"]
    assert sim.now_ps == 250


def test_schedule_rejects_negative_float_delay():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        sim.schedule(-0.5, lambda: None)


def test_post_and_schedule_share_one_sequence():
    """post/post_at interleave with schedule in strict call order at a tie."""
    sim = Simulator()
    order = []
    sim.schedule(100, order.append, "a")
    sim.post(100, order.append, "b")
    sim.schedule_at(100, order.append, "c")
    sim.post_at(100, order.append, "d")
    sim.run()
    assert order == ["a", "b", "c", "d"]


def test_mass_cancellation_compacts_queue():
    """Cancelling more than half the queue compacts it in place."""
    sim = Simulator()
    fired = []
    events = [sim.schedule(1_000 + k, fired.append, k) for k in range(600)]
    for event in events[:500]:
        event.cancel()
    assert sim.pending_events < 600  # cancelled entries were swept out
    sim.run()
    assert fired == list(range(500, 600))


def test_cancel_is_idempotent():
    sim = Simulator()
    fired = []
    event = sim.schedule(10, fired.append, "x")
    event.cancel()
    event.cancel()
    sim.schedule(20, fired.append, "y")
    sim.run()
    assert fired == ["y"]
