"""Tests for LOC distribution analyzers (the paper's three operators)."""

import math

import pytest

from repro.errors import AnalysisError, LocError
from repro.loc.analyzer import (
    DistributionAnalyzer,
    analyze_trace,
    build_edges,
)
from repro.loc.checker import build_checker

from conftest import forward_series, make_event


class TestBuildEdges:
    def test_integer_steps(self):
        assert build_edges(40, 80, 5) == [40, 45, 50, 55, 60, 65, 70, 75, 80]

    def test_fractional_steps_exact_count(self):
        edges = build_edges(0.5, 2.25, 0.01)
        assert len(edges) == 176
        assert edges[0] == 0.5
        assert edges[-1] == 2.25

    def test_validation(self):
        with pytest.raises(AnalysisError):
            build_edges(0, 10, 0)
        with pytest.raises(AnalysisError):
            build_edges(10, 0, 1)


def series_events(values):
    """One 'e' event per value; formula cycle(e[i]) recovers the value."""
    return [make_event("e", cycle=v) for v in values]


class TestInMode:
    def test_histogram_bins(self):
        result = analyze_trace(
            "cycle(e[i]) in <0, 10, 5>", series_events([-5, 0, 3, 5, 7, 10, 12])
        )
        # Bins: (-inf,0], (0,5], (5,10], (10,inf)
        assert result.counts == [2, 2, 2, 1]
        assert result.total == 7

    def test_bin_edge_values_go_to_lower_bin(self):
        result = analyze_trace("cycle(e[i]) in <0, 10, 5>", series_events([5]))
        assert result.counts == [0, 1, 0, 0]

    def test_histogram_labels(self):
        result = analyze_trace("cycle(e[i]) in <0, 10, 5>", series_events([1]))
        labels = [label for label, _ in result.histogram()]
        assert labels == ["(-inf, 0]", "(0, 5]", "(5, 10]", "(10, +inf)"]


class TestBelowMode:
    def test_cdf_fractions(self):
        result = analyze_trace(
            "cycle(e[i]) below <0, 10, 5>", series_events([-1, 2, 6, 20])
        )
        curve = dict(result.curve())
        assert curve[0] == pytest.approx(0.25)
        assert curve[5] == pytest.approx(0.50)
        assert curve[10] == pytest.approx(0.75)

    def test_cdf_is_monotone(self):
        values = [1, 5, 2, 9, 3, 7, 7, 4]
        result = analyze_trace("cycle(e[i]) below <0, 10, 1>", series_events(values))
        fractions = [f for _, f in result.curve()]
        assert all(a <= b for a, b in zip(fractions, fractions[1:]))

    def test_level_cutoff(self):
        result = analyze_trace(
            "cycle(e[i]) below <0, 10, 1>", series_events(list(range(11)))
        )
        # 80% of 11 values are <= 8.
        assert result.level_cutoff(0.8) == 8

    def test_level_unreachable(self):
        result = analyze_trace("cycle(e[i]) below <0, 5, 1>", series_events([100]))
        with pytest.raises(AnalysisError):
            result.level_cutoff(0.5)


class TestAboveMode:
    def test_ccdf_fractions(self):
        result = analyze_trace(
            "cycle(e[i]) above <0, 10, 5>", series_events([-1, 2, 6, 20])
        )
        curve = dict(result.curve())
        assert curve[0] == pytest.approx(0.75)
        assert curve[5] == pytest.approx(0.50)
        assert curve[10] == pytest.approx(0.25)

    def test_boundary_value_counts_as_at_or_above(self):
        result = analyze_trace("cycle(e[i]) above <0, 10, 5>", series_events([5]))
        curve = dict(result.curve())
        assert curve[5] == pytest.approx(1.0)

    def test_ccdf_is_monotone_decreasing(self):
        values = [1, 5, 2, 9, 3, 7, 7, 4]
        result = analyze_trace("cycle(e[i]) above <0, 10, 1>", series_events(values))
        fractions = [f for _, f in result.curve()]
        assert all(a >= b for a, b in zip(fractions, fractions[1:]))

    def test_level_cutoff_largest_reaching(self):
        result = analyze_trace(
            "cycle(e[i]) above <0, 10, 1>", series_events(list(range(11)))
        )
        # frac(v >= 2) = 9/11 = 0.818 >= 0.8; frac(v >= 3) = 8/11 < 0.8.
        assert result.level_cutoff(0.8) == 2


class TestPaperFormula:
    def test_power_distribution_over_synthetic_trace(self):
        # energy rises 1.5 uJ per us -> power = 1.5 W everywhere.
        events = forward_series(150, dt_us=1.0, de_uj=1.5)
        result = analyze_trace(
            "(energy(forward[i+100]) - energy(forward[i])) / "
            "(time(forward[i+100]) - time(forward[i])) below <0.5, 2.25, 0.01>",
            events,
        )
        assert result.total == 50
        assert result.mean == pytest.approx(1.5)
        curve = dict(result.curve())
        assert curve[1.5] == pytest.approx(1.0)
        # Cutoff just below 1.5 (float-representable via edges list):
        below_edge = result.edges[99]  # 0.5 + 99*0.01 = 1.49
        assert result.fraction_at_or_below(99) == pytest.approx(0.0)
        assert below_edge < 1.5


class TestMisc:
    def test_mean_min_max(self):
        result = analyze_trace("cycle(e[i]) in <0, 10, 5>", series_events([1, 3, 8]))
        assert result.mean == pytest.approx(4.0)
        assert result.value_min == 1
        assert result.value_max == 8

    def test_nan_values_excluded(self):
        analyzer = DistributionAnalyzer("cycle(e[i]) in <0, 10, 5>")
        analyzer.observe(float("nan"))
        analyzer.observe(3.0)
        result = analyzer.finish()
        assert result.total == 1

    def test_checker_formula_rejected(self):
        with pytest.raises(LocError):
            DistributionAnalyzer("cycle(e[i]) <= 5")

    def test_distribution_formula_rejected_by_checker(self):
        with pytest.raises(LocError):
            build_checker("cycle(e[i]) below <0, 1, 1>")

    def test_empty_result_guards(self):
        result = analyze_trace("cycle(e[i]) in <0, 10, 5>", [])
        assert result.total == 0
        assert math.isnan(result.value_min)
        with pytest.raises(AnalysisError):
            result.curve()
        with pytest.raises(AnalysisError):
            _ = result.mean

    def test_report_contains_distribution(self):
        result = analyze_trace(
            "cycle(e[i]) below <0, 10, 5>", series_events([1, 6])
        )
        report = result.report()
        assert "instances : 2" in report
        assert "mode      : below" in report

    def test_counts_sum_to_total(self):
        values = [0, 1, 2, 5, 5, 9, 100, -100]
        result = analyze_trace("cycle(e[i]) in <0, 10, 2>", series_events(values))
        assert sum(result.counts) == result.total == len(values)
