"""Tests for the paper's builtin LOC formulas."""

import pytest

from repro.loc.analyzer import analyze_trace
from repro.loc.builtin import (
    forwarding_latency_formula,
    power_distribution_formula,
    throughput_distribution_formula,
)

from conftest import forward_series


def test_formula_1_defaults():
    formula = forwarding_latency_formula()
    assert formula.mode == "in"
    assert formula.triple == (40.0, 80.0, 5.0)
    assert formula.max_relative_offset() == 100


def test_formula_2_computes_watts():
    # time in us, energy in uJ: 2 uJ per us -> 2 W.
    events = forward_series(120, dt_us=1.0, de_uj=2.0)
    result = analyze_trace(power_distribution_formula(), events)
    assert result.mean == pytest.approx(2.0)
    assert result.mode == "below"
    assert result.triple_check() if hasattr(result, "triple_check") else True


def test_formula_3_computes_mbps():
    # 1000 bits per 1 us -> 1000 Mbps exactly.
    events = forward_series(120, dt_us=1.0, bits=1000)
    result = analyze_trace(throughput_distribution_formula(), events)
    assert result.mean == pytest.approx(1000.0)
    assert result.mode == "above"


def test_span_override():
    formula = power_distribution_formula(span=10)
    assert formula.max_relative_offset() == 10
    events = forward_series(30, dt_us=2.0, de_uj=3.0)  # 1.5 W
    result = analyze_trace(formula, events)
    assert result.total == 20
    assert result.mean == pytest.approx(1.5)


def test_triple_overrides():
    formula = throughput_distribution_formula(low=0, high=100, step=10)
    assert formula.triple == (0.0, 100.0, 10.0)
