"""Tests for LOC assertion checkers."""

import pytest

from repro.errors import LocError
from repro.loc.checker import build_checker, check_trace

from conftest import make_event


def latency_trace(latencies):
    events = []
    for k, latency in enumerate(latencies):
        events.append(make_event("enq", cycle=1000 * k))
        events.append(make_event("deq", cycle=1000 * k + latency))
    return events


def test_passing_assertion():
    result = check_trace(
        "cycle(deq[i]) - cycle(enq[i]) <= 50", latency_trace([10, 20, 50])
    )
    assert result.passed
    assert result.instances_checked == 3
    assert result.violations_total == 0


def test_violations_reported_with_instance_numbers():
    result = check_trace(
        "cycle(deq[i]) - cycle(enq[i]) <= 50", latency_trace([10, 99, 50, 77])
    )
    assert not result.passed
    assert result.violations_total == 2
    assert [v.instance for v in result.violations] == [1, 3]
    assert result.violations[0].lhs == 99


def test_violation_recording_capped_but_counted():
    latencies = [100] * 250
    checker = build_checker(
        "cycle(deq[i]) - cycle(enq[i]) <= 50", max_recorded_violations=10
    )
    for event in latency_trace(latencies):
        checker.emit(event)
    result = checker.finish()
    assert result.violations_total == 250
    assert len(result.violations) == 10


@pytest.mark.parametrize(
    "op,lhs,rhs,expected",
    [
        ("<", 5, 5, False),
        ("<=", 5, 5, True),
        (">", 5, 5, False),
        (">=", 5, 5, True),
        ("==", 5, 5, True),
        ("!=", 5, 5, False),
    ],
)
def test_all_operators(op, lhs, rhs, expected):
    events = [make_event("e", cycle=lhs)]
    result = check_trace(f"cycle(e[i]) {op} {rhs}", events)
    assert result.passed is expected


def test_distribution_formula_rejected():
    with pytest.raises(LocError):
        build_checker("cycle(e[i]) in <0, 10, 1>")


def test_report_format():
    result = check_trace(
        "cycle(deq[i]) - cycle(enq[i]) <= 50", latency_trace([10, 99])
    )
    report = result.report()
    assert "violations        : 1" in report
    assert "RESULT: FAIL" in report
    assert "instance 1" in report


def test_report_pass():
    result = check_trace("cycle(deq[i]) - cycle(enq[i]) <= 50", latency_trace([1]))
    assert "RESULT: PASS" in result.report()


def test_undefined_instances_counted_not_judged():
    events = [
        make_event("e", cycle=10, time=0.0),
        make_event("e", cycle=20, time=0.0),
    ]
    result = check_trace("cycle(e[i+1]) / (time(e[i+1]) - time(e[i])) <= 1", events)
    assert result.undefined_instances == 1
    assert result.instances_checked == 0
    assert result.passed


def test_lhs_statistics_accumulated():
    result = check_trace(
        "cycle(deq[i]) - cycle(enq[i]) <= 50", latency_trace([10, 99, 50])
    )
    assert result.lhs_min == 10
    assert result.lhs_max == 99
    assert result.mean_lhs == pytest.approx((10 + 99 + 50) / 3)
    assert result.violation_fraction == pytest.approx(1 / 3)


def test_lhs_statistics_empty_trace():
    import math

    result = check_trace("cycle(deq[i]) - cycle(enq[i]) <= 50", [])
    assert math.isnan(result.mean_lhs)
    assert result.violation_fraction == 0.0


def test_check_result_dict_round_trip():
    result = check_trace(
        "cycle(deq[i]) - cycle(enq[i]) <= 50", latency_trace([10, 99, 50, 77])
    )
    from repro.loc.checker import CheckResult

    rebuilt = CheckResult.from_dict(result.to_dict())
    assert rebuilt == result
    assert rebuilt.to_dict() == result.to_dict()


def test_check_result_dict_round_trip_empty():
    from repro.loc.checker import CheckResult

    result = check_trace("cycle(deq[i]) - cycle(enq[i]) <= 50", [])
    rebuilt = CheckResult.from_dict(result.to_dict())
    assert rebuilt == result  # inf/-inf sentinels survive the None mapping


def test_malformed_check_record_rejected():
    from repro.loc.checker import CheckResult

    with pytest.raises(LocError):
        CheckResult.from_dict({"formula_text": "x <= 1"})
