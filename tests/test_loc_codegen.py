"""Tests for standalone LOC analyzer generation.

The generated source is executed (as generated code would be run in the
field) and its results are cross-checked against the in-process
evaluator on the same traces.
"""

import io
import subprocess
import sys

import pytest

from repro.loc.analyzer import analyze_trace
from repro.loc.checker import check_trace
from repro.loc.codegen import generate_analyzer_source, write_analyzer
from repro.trace.writer import TextTraceWriter

from conftest import forward_series, make_event


def exec_generated(source):
    namespace = {"__name__": "generated_test_module"}
    exec(compile(source, "<generated>", "exec"), namespace)
    return namespace


def trace_lines(events):
    buffer = io.StringIO()
    writer = TextTraceWriter(buffer)
    for event in events:
        writer.emit(event)
    return buffer.getvalue().splitlines()


POWER_FORMULA = (
    "(energy(forward[i+10]) - energy(forward[i])) / "
    "(time(forward[i+10]) - time(forward[i])) below <0.5, 2.25, 0.05>"
)


def test_generated_distribution_matches_evaluator():
    events = forward_series(60, dt_us=1.0, de_uj=1.2)
    module = exec_generated(generate_analyzer_source(POWER_FORMULA))
    generated = module["analyze_lines"](trace_lines(events))
    reference = analyze_trace(POWER_FORMULA, events)
    assert generated["total"] == reference.total
    assert generated["counts"] == reference.counts
    assert generated["curve"] == pytest.approx(
        [(edge, frac) for edge, frac in reference.curve()]
    )


def test_generated_above_mode_matches():
    formula = (
        "(total_bit(forward[i+5]) - total_bit(forward[i])) / "
        "(time(forward[i+5]) - time(forward[i])) above <100, 3300, 100>"
    )
    events = forward_series(40, dt_us=1.0, bits=900)
    module = exec_generated(generate_analyzer_source(formula))
    generated = module["analyze_lines"](trace_lines(events))
    reference = analyze_trace(formula, events)
    assert generated["counts"] == reference.counts
    assert dict(generated["curve"]) == pytest.approx(dict(reference.curve()))


def test_generated_checker_matches():
    formula = "cycle(deq[i]) - cycle(enq[i]) <= 50"
    events = []
    for k, latency in enumerate([10, 80, 30, 99]):
        events.append(make_event("enq", cycle=1000 * k))
        events.append(make_event("deq", cycle=1000 * k + latency))
    module = exec_generated(generate_analyzer_source(formula))
    generated = module["analyze_lines"](trace_lines(events))
    reference = check_trace(formula, events)
    assert generated["checked"] == reference.instances_checked
    assert generated["violations_total"] == reference.violations_total
    assert [v[0] for v in generated["violations"]] == [
        v.instance for v in reference.violations
    ]
    assert generated["passed"] is reference.passed


def test_generated_handles_multi_event_and_absolute_refs():
    formula = "time(deq[i]) - time(enq[0]) <= 100"
    events = [
        make_event("enq", time=1.0),
        *(make_event("deq", time=1.0 + k) for k in range(5)),
    ]
    module = exec_generated(generate_analyzer_source(formula))
    generated = module["analyze_lines"](trace_lines(events))
    reference = check_trace(formula, events)
    assert generated["checked"] == reference.instances_checked
    assert generated["passed"] is reference.passed


def test_generated_script_is_self_contained(tmp_path):
    """The script runs as a subprocess with only the standard library."""
    script = tmp_path / "analyzer.py"
    write_analyzer(POWER_FORMULA, str(script))
    trace = tmp_path / "trace.txt"
    events = forward_series(30, dt_us=1.0, de_uj=1.5)
    with TextTraceWriter.open(str(trace)) as writer:
        for event in events:
            writer.emit(event)
    proc = subprocess.run(
        [sys.executable, str(script), str(trace)],
        capture_output=True,
        text=True,
        check=True,
    )
    assert "LOC distribution" in proc.stdout
    assert "instances : 20" in proc.stdout


def test_generated_script_usage_error(tmp_path):
    script = tmp_path / "analyzer.py"
    write_analyzer(POWER_FORMULA, str(script))
    proc = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True
    )
    assert proc.returncode == 2
    assert "usage" in proc.stderr


def test_generated_source_has_no_repro_imports():
    source = generate_analyzer_source(POWER_FORMULA)
    assert "import repro" not in source
    assert "from repro" not in source
    assert "import sys" in source


def test_generated_div_by_zero_counted_undefined():
    formula = "energy(e[i]) / time(e[i]) below <0, 10, 1>"
    events = [make_event("e", time=0.0, energy=5.0), make_event("e", time=2.0, energy=4.0)]
    module = exec_generated(generate_analyzer_source(formula))
    generated = module["analyze_lines"](trace_lines(events))
    assert generated["undefined"] == 1
    assert generated["total"] == 1
