"""Tests for streaming LOC instance evaluation."""

import math

import pytest

from repro.loc.evaluator import StreamingEvaluator, evaluate_over
from repro.loc.parser import parse_formula

from conftest import forward_series, make_event


def test_simple_single_event_formula():
    formula = parse_formula("time(forward[i+1]) - time(forward[i]) <= 2")
    events = forward_series(5, dt_us=1.0)
    results = evaluate_over(formula, events)
    # 5 events -> instances 0..3 (each needs i and i+1).
    assert [i for i, _ in results] == [0, 1, 2, 3]
    for _, (lhs, rhs) in results:
        assert lhs == pytest.approx(1.0)
        assert rhs == 2.0


def test_instances_stream_incrementally():
    formula = parse_formula("time(forward[i+2]) - time(forward[i]) <= 100")
    evaluator = StreamingEvaluator(formula)
    events = forward_series(4)
    assert list(evaluator.feed(events[0])) == []
    assert list(evaluator.feed(events[1])) == []
    first = list(evaluator.feed(events[2]))
    assert [i for i, _ in first] == [0]
    second = list(evaluator.feed(events[3]))
    assert [i for i, _ in second] == [1]


def test_multi_event_formula():
    formula = parse_formula("cycle(deq[i]) - cycle(enq[i]) <= 50")
    events = []
    for k in range(3):
        events.append(make_event("enq", cycle=100 * k))
        events.append(make_event("deq", cycle=100 * k + 30))
    results = evaluate_over(formula, events)
    assert len(results) == 3
    for _, (lhs, _) in results:
        assert lhs == 30


def test_interleaving_does_not_matter_for_instance_values():
    formula = parse_formula("cycle(deq[i]) - cycle(enq[i]) <= 50")
    enqs = [make_event("enq", cycle=10 * k) for k in range(4)]
    deqs = [make_event("deq", cycle=10 * k + 5) for k in range(4)]
    grouped = evaluate_over(formula, enqs + deqs)
    interleaved = evaluate_over(
        formula, [e for pair in zip(enqs, deqs) for e in pair]
    )
    assert grouped == interleaved


def test_negative_index_instances_skipped():
    formula = parse_formula("time(forward[i]) - time(forward[i-2]) <= 100")
    events = forward_series(5, dt_us=1.0)
    results = evaluate_over(formula, events)
    # Instances 0 and 1 reference negative indices: skipped.
    assert [i for i, _ in results] == [2, 3, 4]
    for _, (lhs, _) in results:
        assert lhs == pytest.approx(2.0)


def test_absolute_index_reference():
    formula = parse_formula("time(forward[i]) - time(forward[0]) <= 100")
    events = forward_series(4, dt_us=2.0)
    results = evaluate_over(formula, events)
    assert [round(lhs) for _, (lhs, _) in results] == [0, 2, 4, 6]


def test_division_by_zero_yields_nan():
    formula = parse_formula(
        "energy(forward[i+1]) / (time(forward[i+1]) - time(forward[i])) <= 1"
    )
    events = [
        make_event("forward", time=1.0, energy=5.0),
        make_event("forward", time=1.0, energy=6.0),  # zero dt
    ]
    evaluator = StreamingEvaluator(formula)
    out = []
    for event in events:
        out.extend(evaluator.feed(event))
    assert len(out) == 1
    assert math.isnan(out[0][1][0])
    assert evaluator.undefined_instances == 1


def test_unreferenced_events_ignored():
    formula = parse_formula("time(forward[i+1]) - time(forward[i]) <= 5")
    events = [
        make_event("forward", time=0.0),
        make_event("fifo", time=0.5),
        make_event("m2_pipeline", time=0.7),
        make_event("forward", time=1.0),
    ]
    results = evaluate_over(formula, events)
    assert len(results) == 1


def test_window_eviction_bounds_memory():
    formula = parse_formula("time(forward[i+3]) - time(forward[i]) <= 100")
    evaluator = StreamingEvaluator(formula)
    for event in forward_series(500):
        for _ in evaluator.feed(event):
            pass
    series = evaluator._series["forward"]
    # Window retains at most max_offset + 1 rows (plus slack of 1).
    assert len(series.values) <= 5


def test_arithmetic_evaluation():
    formula = parse_formula("(time(forward[i]) * 2 + 1) / 2 - 0.5 <= 100")
    events = forward_series(3, dt_us=3.0)
    results = evaluate_over(formula, events)
    assert [lhs for _, (lhs, _) in results] == pytest.approx([0.0, 3.0, 6.0])


def test_instances_evaluated_counter():
    formula = parse_formula("time(forward[i+1]) - time(forward[i]) <= 100")
    evaluator = StreamingEvaluator(formula)
    for event in forward_series(10):
        for _ in evaluator.feed(event):
            pass
    assert evaluator.instances_evaluated == 9
