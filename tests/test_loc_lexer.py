"""Tests for the LOC tokenizer."""

import pytest

from repro.errors import LocSyntaxError
from repro.loc.lexer import tokenize


def kinds(text):
    return [token.kind for token in tokenize(text)]


def test_simple_checker_formula():
    assert kinds("cycle(deq[i]) <= 50") == [
        "IDENT",
        "LPAREN",
        "IDENT",
        "LBRACKET",
        "IDENT",
        "RBRACKET",
        "RPAREN",
        "LE",
        "NUMBER",
        "EOF",
    ]


def test_numbers():
    tokens = tokenize("1 2.5 0.01 1e6 2.5e-3 .5")
    values = [t.text for t in tokens if t.kind == "NUMBER"]
    assert values == ["1", "2.5", "0.01", "1e6", "2.5e-3", ".5"]


def test_number_not_greedy_over_exponent_without_digits():
    tokens = tokenize("2e")  # not an exponent: number then ident
    assert [t.kind for t in tokens] == ["NUMBER", "IDENT", "EOF"]


def test_distribution_keywords_case_insensitive():
    assert "KW_BELOW" in kinds("x(f[i]) BELOW <1, 2, 0.5>")
    assert "KW_IN" in kinds("x(f[i]) in <1, 2, 1>")
    assert "KW_ABOVE" in kinds("x(f[i]) Above <1, 2, 1>")


def test_relational_operators():
    assert kinds("a(b[i]) >= 1")[-3] == "GE"
    assert kinds("a(b[i]) != 1")[-3] == "NE"
    assert kinds("a(b[i]) == 1")[-3] == "EQ"
    assert kinds("a(b[i]) = 1")[-3] == "EQ"  # single '=' tolerated


def test_unicode_normalization():
    # The paper's typeset operators should tokenize.
    assert "LE" in kinds("a(b[i]) ≤ 5")
    assert "MINUS" in kinds("a(b[i]) − 1 <= 5")
    tokens = kinds("a(b[i]) in ⟨1, 2, 0.5⟩")
    assert "LT" in tokens and "GT" in tokens


def test_positions_recorded():
    tokens = tokenize("abc + 1")
    assert tokens[0].position == 0
    assert tokens[1].position == 4
    assert tokens[2].position == 6


def test_unexpected_character():
    with pytest.raises(LocSyntaxError):
        tokenize("a(b[i]) $ 1")


def test_identifier_with_underscores_and_digits():
    tokens = tokenize("total_bit(m2_pipeline[i])")
    assert tokens[0].text == "total_bit"
    assert tokens[2].text == "m2_pipeline"


def test_empty_input_gives_only_eof():
    assert kinds("") == ["EOF"]
    assert kinds("   \t\n") == ["EOF"]
