"""Tests for the LOC parser."""

import pytest

from repro.errors import LocSyntaxError
from repro.loc.ast_nodes import (
    AnnotationRef,
    BinaryOp,
    CheckerFormula,
    DistributionFormula,
    Negate,
    Number,
)
from repro.loc.parser import parse_formula


def test_checker_formula_structure():
    formula = parse_formula("cycle(deq[i]) - cycle(enq[i]) <= 50")
    assert isinstance(formula, CheckerFormula)
    assert formula.op == "<="
    assert isinstance(formula.lhs, BinaryOp)
    assert isinstance(formula.rhs, Number)
    assert formula.rhs.value == 50.0
    assert formula.events() == frozenset({"deq", "enq"})


def test_distribution_formula_structure():
    formula = parse_formula(
        "time(forward[i+100]) - time(forward[i]) in <40, 80, 5>"
    )
    assert isinstance(formula, DistributionFormula)
    assert formula.mode == "in"
    assert formula.triple == (40.0, 80.0, 5.0)


def test_paper_formula_2_parses():
    formula = parse_formula(
        "(energy(forward[i+100]) - energy(forward[i])) / "
        "(time(forward[i+100]) - time(forward[i])) below <0.5, 2.25, 0.01>"
    )
    assert isinstance(formula, DistributionFormula)
    assert formula.mode == "below"
    assert formula.max_relative_offset() == 100


def test_index_expressions():
    ref = parse_formula("cycle(e[i-3]) <= 1").lhs
    assert isinstance(ref, AnnotationRef)
    assert ref.index.offset == -3
    assert not ref.index.absolute

    ref = parse_formula("cycle(e[7]) <= 1").lhs
    assert ref.index.absolute
    assert ref.index.offset == 7
    assert ref.index.resolve(123) == 7


def test_index_variable_must_be_i():
    with pytest.raises(LocSyntaxError):
        parse_formula("cycle(e[j]) <= 1")


def test_fractional_index_offset_rejected():
    with pytest.raises(LocSyntaxError):
        parse_formula("cycle(e[i+1.5]) <= 1")


def test_precedence_multiplication_over_addition():
    formula = parse_formula("cycle(e[i]) + 2 * 3 <= 10")
    lhs = formula.lhs
    assert isinstance(lhs, BinaryOp) and lhs.op == "+"
    assert isinstance(lhs.right, BinaryOp) and lhs.right.op == "*"


def test_parentheses_override_precedence():
    formula = parse_formula("(cycle(e[i]) + 2) * 3 <= 10")
    lhs = formula.lhs
    assert isinstance(lhs, BinaryOp) and lhs.op == "*"


def test_unary_minus():
    formula = parse_formula("-cycle(e[i]) <= 0")
    assert isinstance(formula.lhs, Negate)


def test_negative_triple_values():
    formula = parse_formula("cycle(e[i]) in <-10, 10, 1>")
    assert formula.low == -10.0


def test_triple_validation():
    with pytest.raises(LocSyntaxError):
        parse_formula("cycle(e[i]) in <10, 5, 1>")  # max < min
    with pytest.raises(LocSyntaxError):
        parse_formula("cycle(e[i]) in <0, 10, 0>")  # zero step


def test_missing_operator_rejected():
    with pytest.raises(LocSyntaxError):
        parse_formula("cycle(e[i])")


def test_trailing_garbage_rejected():
    with pytest.raises(LocSyntaxError):
        parse_formula("cycle(e[i]) <= 5 extra")


def test_malformed_reference_rejected():
    with pytest.raises(LocSyntaxError):
        parse_formula("cycle(e) <= 5")
    with pytest.raises(LocSyntaxError):
        parse_formula("cycle(e[i) <= 5")


def test_unparse_round_trip():
    texts = [
        "cycle(deq[i]) - cycle(enq[i]) <= 50",
        "(energy(forward[i+100]) - energy(forward[i])) / "
        "(time(forward[i+100]) - time(forward[i])) below <0.5, 2.25, 0.01>",
        "total_bit(forward[i+10]) - total_bit(forward[i]) above <100, 3300, 10>",
        "-cycle(e[i-2]) * 3 + 1 == 0",
    ]
    for text in texts:
        formula = parse_formula(text)
        reparsed = parse_formula(formula.unparse())
        assert reparsed.unparse() == formula.unparse()


def test_offsets_span():
    formula = parse_formula("cycle(e[i+7]) - cycle(e[i-2]) <= 5")
    assert formula.max_relative_offset() == 7
    assert formula.min_relative_offset() == -2
