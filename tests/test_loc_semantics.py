"""Tests for LOC semantic validation."""

import pytest

from repro.errors import LocSemanticError
from repro.loc.parser import parse_formula
from repro.loc.semantics import validate_formula


def test_paper_formula_validates():
    formula = parse_formula(
        "(energy(forward[i+100]) - energy(forward[i])) / "
        "(time(forward[i+100]) - time(forward[i])) below <0.5, 2.25, 0.01>"
    )
    validate_formula(formula)


def test_me_prefixed_events_validate():
    validate_formula(parse_formula("cycle(m2_pipeline[i]) <= 100"))
    validate_formula(parse_formula("cycle(m15_fifo[i]) <= 100"))


def test_unknown_annotation_rejected():
    formula = parse_formula("watts(forward[i]) <= 100")
    with pytest.raises(LocSemanticError):
        validate_formula(formula)


def test_malformed_event_name_rejected():
    formula = parse_formula("cycle(warp[i]) <= 100")
    with pytest.raises(LocSemanticError):
        validate_formula(formula)


def test_custom_event_universe():
    formula = parse_formula("cycle(deq[i]) - cycle(enq[i]) <= 50")
    validate_formula(formula, events=("enq", "deq"))
    with pytest.raises(LocSemanticError):
        validate_formula(formula, events=("enq",))


def test_custom_annotations():
    formula = parse_formula("watts(forward[i]) <= 100")
    validate_formula(formula, annotations=("watts",))
