"""Tests for queued resources (memory controllers, IX bus)."""

import pytest

from repro.config import MemoryConfig
from repro.errors import MemoryModelError
from repro.npu.memqueue import QueuedResource, build_memories
from repro.sim.kernel import Simulator


def make_resource(sim, access_ns=60.0, occupancy_ns=20.0, byte_ns=1.0, on_energy=None):
    return QueuedResource(sim, "mem", access_ns, occupancy_ns, byte_ns, on_energy)


def test_single_request_latency():
    sim = Simulator()
    resource = make_resource(sim)
    done_at = []
    resource.request(64, lambda: done_at.append(sim.now_ps))
    sim.run()
    # access 60 ns + 64 bytes * 1 ns = 124 ns
    assert done_at == [124_000]


def test_queueing_delays_second_request():
    sim = Simulator()
    resource = make_resource(sim)
    done = []
    resource.request(64, lambda: done.append(("a", sim.now_ps)))
    resource.request(64, lambda: done.append(("b", sim.now_ps)))
    sim.run()
    # Second starts after first's occupancy (20 + 64 = 84 ns).
    assert done[0] == ("a", 124_000)
    assert done[1] == ("b", 84_000 + 124_000)


def test_fifo_completion_order():
    sim = Simulator()
    resource = make_resource(sim)
    order = []
    for tag in range(5):
        resource.request(8, order.append, tag)
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_server_idles_between_spaced_requests():
    sim = Simulator()
    resource = make_resource(sim)
    done = []
    resource.request(10, lambda: done.append(sim.now_ps))
    sim.run()
    sim.schedule(1_000_000, lambda: resource.request(10, lambda: done.append(sim.now_ps)))
    sim.run()
    # Second request issues at done[0] + 1 ms and sees no queueing: the
    # same 70 ns latency applies from its issue instant.
    assert done[1] == done[0] + 1_000_000 + 70_000
    assert resource.total_wait_ps == 0


def test_wait_statistics():
    sim = Simulator()
    resource = make_resource(sim)
    for _ in range(3):
        resource.request(64, lambda: None)
    sim.run()
    # Waits: 0, 84 ns, 168 ns.
    assert resource.total_wait_ps == 84_000 + 168_000
    assert resource.max_wait_ps == 168_000
    assert resource.mean_wait_ns == pytest.approx(84.0)


def test_energy_hook_called():
    sim = Simulator()
    charges = []
    resource = make_resource(sim, on_energy=lambda name, n: charges.append((name, n)))
    resource.request(32, lambda: None)
    sim.run()
    assert charges == [("mem", 32)]


def test_utilization():
    sim = Simulator()
    resource = make_resource(sim)
    resource.request(80, lambda: None)  # occupancy 100 ns
    sim.run()
    sim.run(until_ps=1_000_000)
    assert resource.utilization(1_000_000) == pytest.approx(0.1)


def test_invalid_requests_rejected():
    sim = Simulator()
    resource = make_resource(sim)
    with pytest.raises(MemoryModelError):
        resource.request(0, lambda: None)
    with pytest.raises(MemoryModelError):
        QueuedResource(sim, "bad", 0, 10, 1)


def test_build_memories_from_config():
    sim = Simulator()
    sram, sdram, scratch, ixbus = build_memories(sim, MemoryConfig())
    assert sram.name == "sram"
    assert sdram.name == "sdram"
    assert scratch.name == "scratch"
    assert ixbus.name == "ixbus"


def test_sdram_slower_than_sram():
    sim = Simulator()
    sram, sdram, _, _ = build_memories(sim, MemoryConfig())
    done = {}
    sram.request(64, lambda: done.__setitem__("sram", sim.now_ps))
    sdram.request(64, lambda: done.__setitem__("sdram", sim.now_ps))
    sim.run()
    assert done["sdram"] > done["sram"]
