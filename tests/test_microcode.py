"""Tests for the microcode applications and the stride-trie serializer.

The key property: detailed-mode decisions agree with the pure-Python
reference structures and with the fast models.
"""

import random

import pytest

from repro.apps.base import AppResources, build_app
from repro.apps.detailed import IpfwdrMicrocodeApp, NatMicrocodeApp
from repro.apps.microcode import (
    LEAF_FLAG,
    TRIE_BASE,
    serialize_stride_trie,
    stride_lookup_reference,
)
from repro.apps.routing import RoutingTrie, random_routing_trie
from repro.config import DvsConfig, TrafficConfig
from repro.npu.memstore import MemStore
from repro.npu.steps import Compute, MemRead, MemWrite, PutTx
from repro.runner import run_simulation
from repro.sim.rng import RngStreams

from conftest import quick_config
from test_traffic import make_packet


def fresh_resources(seed=77):
    return AppResources(num_ports=16, rng_streams=RngStreams(seed))


class TestStrideTrieSerializer:
    def test_matches_binary_trie_lookup(self):
        rng = random.Random(5)
        trie = random_routing_trie(rng, num_prefixes=128)
        store = MemStore("sram", 1 << 22)
        tables = serialize_stride_trie(trie, store)
        assert tables >= 1
        for _ in range(500):
            address = rng.getrandbits(32)
            expected, _ = trie.lookup(address)
            assert stride_lookup_reference(store, TRIE_BASE, address) == expected

    def test_deep_prefixes_produce_deep_tables(self):
        trie = RoutingTrie(default_port=0)
        trie.insert(0x0A0B0C0D, 32, 9)
        store = MemStore("sram", 1 << 22)
        tables = serialize_stride_trie(trie, store)
        assert tables == 4  # one per stride level on the 10.11.12.x path
        assert stride_lookup_reference(store, TRIE_BASE, 0x0A0B0C0D) == 9
        assert stride_lookup_reference(store, TRIE_BASE, 0x0A0B0C0E) == 0

    def test_default_only_is_single_table(self):
        trie = RoutingTrie(default_port=3)
        store = MemStore("sram", 1 << 22)
        assert serialize_stride_trie(trie, store) == 1
        word = store.read_word(TRIE_BASE)
        assert word & LEAF_FLAG
        assert word & 0xFF == 3


class TestIpfwdrMicrocode:
    def test_routes_match_fast_model(self):
        """Same trie, same packets: microcode ports == fast-model ports."""
        detailed = IpfwdrMicrocodeApp(fresh_resources(seed=11))
        fast_resources = fresh_resources(seed=11)
        fast_resources.routing_trie = detailed.trie  # share the table
        fast = build_app("ipfwdr", fast_resources)
        rng = random.Random(9)
        for seq in range(40):
            dst = rng.getrandbits(32)
            pkt_uc = make_packet(seq=seq, dst_ip=dst)
            pkt_fast = make_packet(seq=seq, dst_ip=dst)
            list(detailed.rx_steps(pkt_uc))
            list(fast.rx_steps(pkt_fast))
            assert pkt_uc.output_port == pkt_fast.output_port

    def test_memory_op_sequence_shape(self):
        app = IpfwdrMicrocodeApp(fresh_resources())
        packet = make_packet(size=320, dst_ip=0x0A0B0C0D)
        steps = list(app.rx_steps(packet))
        sdram_writes = [
            s for s in steps if isinstance(s, MemWrite) and s.target == "sdram"
        ]
        sram_reads = [
            s for s in steps if isinstance(s, MemRead) and s.target == "sram"
        ]
        assert len(sdram_writes) == 5  # 320 bytes in 64-byte chunks
        assert 1 <= len(sram_reads) <= 4  # stride walk depth
        assert any(isinstance(s, PutTx) for s in steps)

    def test_instruction_cost_in_fast_model_ballpark(self):
        detailed = IpfwdrMicrocodeApp(fresh_resources(seed=11))
        fast_resources = fresh_resources(seed=11)
        fast_resources.routing_trie = detailed.trie
        fast = build_app("ipfwdr", fast_resources)
        packet_uc = make_packet(size=576, dst_ip=123456)
        packet_fast = make_packet(size=576, dst_ip=123456)
        uc_cost = sum(
            s.instructions
            for s in detailed.rx_steps(packet_uc)
            if isinstance(s, Compute)
        )
        fast_cost = fast.expected_rx_instructions(packet_fast)
        assert uc_cost == pytest.approx(fast_cost, rel=0.6)


class TestNatMicrocode:
    def test_one_install_per_flow(self):
        app = NatMicrocodeApp(fresh_resources())
        flows = [(k * 977, k * 31 + 1, 1000 + k, 80, 6) for k in range(8)]
        for seq, (src, dst, sport, dport, proto) in enumerate(flows * 3):
            packet = make_packet(
                seq=seq, src_ip=src, dst_ip=dst, src_port=sport,
                dst_port=dport, protocol=proto,
            )
            list(app.rx_steps(packet))
        assert app.nat_entries_installed() == len(flows)

    def test_hit_path_skips_install_write(self):
        app = NatMicrocodeApp(fresh_resources())
        packet = make_packet()
        first = list(app.rx_steps(packet))
        second = list(app.rx_steps(make_packet(seq=1)))
        writes_first = sum(
            1 for s in first if isinstance(s, MemWrite) and s.target == "sram"
        )
        writes_second = sum(
            1 for s in second if isinstance(s, MemWrite) and s.target == "sram"
        )
        assert writes_first == 1
        assert writes_second == 0

    def test_no_sdram_traffic(self):
        app = NatMicrocodeApp(fresh_resources())
        steps = list(app.rx_steps(make_packet()))
        assert not any(
            getattr(s, "target", None) == "sdram" for s in steps
        )


class TestDetailedFullChip:
    # pytest-benchmark reserves the name "benchmark" for its fixture.
    @pytest.mark.parametrize("bench_name", ["ipfwdr_uc", "nat_uc"])
    def test_detailed_benchmarks_forward_packets(self, bench_name):
        result = run_simulation(
            quick_config(
                benchmark=bench_name,
                duration_cycles=100_000,
                traffic=TrafficConfig(offered_load_mbps=500.0, process="cbr"),
            )
        )
        assert result.totals.forwarded_packets > 10
        assert result.totals.loss_fraction < 0.2

    def test_detailed_mode_with_tdvs(self):
        result = run_simulation(
            quick_config(
                benchmark="ipfwdr_uc",
                duration_cycles=200_000,
                traffic=TrafficConfig(offered_load_mbps=200.0, process="cbr"),
                dvs=DvsConfig(policy="tdvs", window_cycles=20_000,
                              top_threshold_mbps=1200.0),
            )
        )
        assert result.governor_transitions > 0
        assert result.totals.forwarded_packets > 0

    def test_per_instruction_pipeline_events(self):
        from repro.trace.buffer import TraceBuffer

        buffer = TraceBuffer(names=("m0_pipeline",))
        result = run_simulation(
            quick_config(
                benchmark="ipfwdr_uc",
                duration_cycles=30_000,
                traffic=TrafficConfig(offered_load_mbps=300.0, process="cbr"),
                pipeline_events="instruction",
            ),
            sinks=[buffer],
        )
        # Detailed mode yields Compute(1) per instruction, so pipeline
        # events are per instruction (plus poll batches).
        assert len(buffer) > 100
