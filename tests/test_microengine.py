"""Tests for the microengine runtime: threads, polling, stalls, idling."""

import pytest

from repro.config import MemoryConfig
from repro.errors import NpuError, SimulationError
from repro.npu.memqueue import build_memories
from repro.npu.microengine import BUSY, IDLE, STALLED, Microengine, RxPortMux
from repro.npu.steps import Compute, Drop, MemPost, MemRead, MemWrite, PutTx
from repro.sim.clock import ClockDomain
from repro.sim.kernel import Simulator
from repro.units import mhz

from test_traffic import make_packet


class ListSource:
    """Work source delivering a pre-built packet list."""

    def __init__(self, packets):
        self.packets = list(packets)

    def poll(self):
        if self.packets:
            return self.packets.pop(0)
        return None


def make_me(sim, packets, steps_fn, num_threads=4, poll_instr=24, role="rx",
            on_put_tx=None, on_drop=None, on_done=None, poll_counts_as_idle=False):
    clock = ClockDomain(sim, mhz(600), "me0")
    sram, sdram, scratch, _ = build_memories(sim, MemoryConfig())
    memories = {"sram": sram, "sdram": sdram, "scratch": scratch}
    me = Microengine(
        sim, clock, 0, role, ListSource(packets), steps_fn, memories,
        num_threads=num_threads, poll_instructions=poll_instr,
        poll_counts_as_idle=poll_counts_as_idle,
        on_put_tx=on_put_tx, on_drop=on_drop, on_packet_done=on_done,
    )
    return me


def test_compute_only_packet_processing():
    sim = Simulator()
    done = []

    def steps(packet):
        yield Compute(600)  # 1 us at 600 MHz

    me = make_me(sim, [make_packet(seq=0)], steps, on_done=done.append)
    me.start()
    sim.run(until_ps=3_000_000)
    assert len(done) == 1
    assert me.packets_processed == 1
    assert me.instructions_executed >= 600


def test_polling_burns_cycles_and_engine_stays_busy():
    sim = Simulator()

    def steps(packet):
        yield Compute(1)

    me = make_me(sim, [], steps)
    me.start()
    sim.run(until_ps=1_000_000)
    totals = me.states.totals_ps()
    assert me.polls > 0
    assert totals.get(BUSY, 0) == pytest.approx(1_000_000, rel=0.01)
    assert totals.get(IDLE, 0) == 0


def test_poll_counts_as_idle_ablation():
    sim = Simulator()

    def steps(packet):
        yield Compute(1)

    me = make_me(sim, [], steps, poll_counts_as_idle=True)
    me.start()
    sim.run(until_ps=1_000_000)
    totals = me.states.totals_ps()
    assert totals.get(IDLE, 0) > 0.8 * 1_000_000


def test_engine_idle_when_all_threads_wait_on_memory():
    sim = Simulator()

    def steps(packet):
        yield Compute(6)
        yield MemRead("sdram", 2048)  # long occupancy; four threads pile up

    packets = [make_packet(seq=k) for k in range(4)]
    me = make_me(sim, packets, steps)
    me.start()
    sim.run(until_ps=2_000_000)
    totals = me.states.totals_ps()
    assert totals.get(IDLE, 0) > 0


def test_threads_overlap_memory_waits():
    """With 4 threads, back-to-back memory packets finish sooner than serial."""

    def steps(packet):
        yield Compute(60)
        yield MemRead("sdram", 64)
        yield Compute(60)

    def run_with(threads):
        sim = Simulator()
        done = []
        packets = [make_packet(seq=k) for k in range(8)]
        me = make_me(sim, packets, steps, num_threads=threads,
                     on_done=lambda p: done.append(sim.now_ps))
        me.start()
        sim.run(until_ps=50_000_000)
        return done[-1]

    assert run_with(4) < run_with(1)


def test_mem_post_does_not_block():
    sim = Simulator()
    done = []

    def steps(packet):
        yield MemPost("sdram", 2048)
        yield Compute(6)

    me = make_me(sim, [make_packet()], steps, on_done=lambda p: done.append(sim.now_ps))
    me.start()
    sim.run(until_ps=1_000_000)
    # Compute(6) = 10 ns; a blocking 2 KB SDRAM read would take ~4 us.
    assert done and done[0] < 100_000


def test_put_tx_and_drop_hooks():
    sim = Simulator()
    put, dropped = [], []

    def steps(packet):
        yield Compute(10)
        if packet.seq % 2 == 0:
            yield PutTx()
        else:
            yield Drop("odd")

    packets = [make_packet(seq=k) for k in range(4)]
    me = make_me(sim, packets, steps,
                 on_put_tx=put.append, on_drop=lambda p, r: dropped.append((p.seq, r)))
    me.start()
    sim.run(until_ps=5_000_000)
    assert [p.seq for p in put] == [0, 2]
    assert dropped == [(1, "odd"), (3, "odd")]


def test_stall_freezes_execution():
    sim = Simulator()
    done = []

    def steps(packet):
        yield Compute(600)  # 1 us

    me = make_me(sim, [make_packet()], steps, on_done=lambda p: done.append(sim.now_ps))
    me.start()
    me.stall_for(10_000_000)  # 10 us stall before anything runs
    sim.run(until_ps=20_000_000)
    assert done
    assert done[0] >= 10_000_000
    assert me.states.totals_ps().get(STALLED, 0) >= 9_000_000


def test_stall_extends_not_shortens():
    sim = Simulator()
    me = make_me(sim, [], lambda p: iter(()))
    me.start()
    me.stall_for(10_000_000)
    me.stall_for(1_000_000)  # shorter: must not cut the first stall
    sim.run(until_ps=5_000_000)
    assert me.is_stalled
    sim.run(until_ps=11_000_000)
    assert not me.is_stalled


def test_memory_completion_during_stall_defers_dispatch():
    sim = Simulator()
    finished = []

    def steps(packet):
        yield MemRead("sram", 4)
        yield Compute(6)

    me = make_me(sim, [make_packet()], steps,
                 on_done=lambda p: finished.append(sim.now_ps))
    me.start()
    sim.run(until_ps=10_000)  # let the memory read get issued
    me.stall_for(5_000_000)
    sim.run(until_ps=20_000_000)
    assert finished
    assert finished[0] >= 5_000_000


def test_set_vf_changes_clock_and_vdd():
    sim = Simulator()
    me = make_me(sim, [], lambda p: iter(()))
    me.set_vf(mhz(400), 1.1)
    assert me.clock.freq_hz == mhz(400)
    assert me.vdd == 1.1


def test_zero_time_loop_detected():
    sim = Simulator()

    def steps(packet):
        while True:
            yield PutTx()

    me = make_me(sim, [make_packet()], steps, on_put_tx=lambda p: None)
    with pytest.raises(SimulationError):
        me.start()


def test_cannot_start_twice():
    sim = Simulator()
    me = make_me(sim, [], lambda p: iter(()))
    me.start()
    with pytest.raises(NpuError):
        me.start()


def test_unknown_memory_target_rejected():
    sim = Simulator()

    def steps(packet):
        yield MemRead("sram", 4)

    me = make_me(sim, [make_packet()], steps)
    del me.memories["sram"]
    with pytest.raises(NpuError):
        me.start()


def test_rx_port_mux_round_robin():
    sim = Simulator()
    from repro.npu.ports import DevicePort

    ports = [DevicePort(sim, k, 1e9, 8) for k in range(3)]
    for k, port in enumerate(ports):
        port.rx_queue.offer(make_packet(seq=k))
    mux = RxPortMux(ports)
    seqs = [mux.poll().seq for _ in range(3)]
    assert sorted(seqs) == [0, 1, 2]
    assert mux.poll() is None


def test_rx_port_mux_requires_ports():
    with pytest.raises(NpuError):
        RxPortMux([])
