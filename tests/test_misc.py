"""Coverage for corners not exercised elsewhere: RNG spawning, the
annotation provider, buffer exhaustion, the version metadata."""

import pytest

import repro
from repro.config import MemoryConfig, NpuConfig, TrafficConfig
from repro.runner import SimulationRun
from repro.sim.clock import FixedClock
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams
from repro.trace.annotations import AnnotationProvider

from conftest import quick_config


class TestRngSpawn:
    def test_spawned_namespaces_differ_from_parent(self):
        parent = RngStreams(1)
        child = parent.spawn("apps")
        assert parent.get("x").random() != child.get("x").random()

    def test_spawn_deterministic(self):
        a = RngStreams(1).spawn("apps").get("x").random()
        b = RngStreams(1).spawn("apps").get("x").random()
        assert a == b

    def test_distinct_spawn_names_differ(self):
        root = RngStreams(1)
        assert (
            root.spawn("a").get("x").random() != root.spawn("b").get("x").random()
        )


class TestAnnotationProvider:
    def test_event_stamps_current_state(self):
        sim = Simulator()
        clock = FixedClock(sim, 600e6, "ref")
        state = {"energy": 0.0, "pkt": 0, "bit": 0}
        provider = AnnotationProvider(
            clock,
            energy_uj=lambda: state["energy"],
            total_pkt=lambda: state["pkt"],
            total_bit=lambda: state["bit"],
        )
        sim.run(until_ps=1_000_000)  # 1 us = 600 cycles
        state.update(energy=2.5, pkt=3, bit=999)
        event = provider.make_event("forward")
        assert event.cycle == 600
        assert event.time == pytest.approx(1.0)
        assert event.energy == 2.5
        assert event.total_pkt == 3
        assert event.total_bit == 999


class TestBufferExhaustion:
    def test_tiny_buffer_pool_drops_with_reason(self):
        # sdram_bytes=8 KiB -> pool of (8 KiB / 2) / 2 KiB = 2 buffers:
        # with several packets in flight, allocation fails and the chip
        # takes the no-buffer drop path.
        config = quick_config(
            duration_cycles=200_000,
            npu=NpuConfig(memory=MemoryConfig(sdram_bytes=8 * 1024)),
            traffic=TrafficConfig(offered_load_mbps=1500.0, process="cbr"),
        )
        run = SimulationRun(config)
        result = run.run()
        assert result.totals.drops_by_reason.get("no-buffer", 0) > 0
        # Forwarding continues: buffers are recycled at forward time.
        assert result.totals.forwarded_packets > 0
        assert run.chip.buffer_pool.failures > 0


class TestPackageMetadata:
    def test_version_and_paper(self):
        assert repro.__version__
        assert "DATE 2005" in repro.PAPER

    def test_public_api_importable(self):
        from repro import (  # noqa: F401
            DvsConfig,
            NpuConfig,
            RunConfig,
            RunResult,
            SimulationRun,
            TrafficConfig,
            run_simulation,
        )


class TestGovernorDescribe:
    def test_describe_lines(self):
        from repro.config import DvsConfig

        run = SimulationRun(
            quick_config(
                duration_cycles=200_000,
                dvs=DvsConfig(policy="tdvs", window_cycles=40_000),
            )
        )
        run.run()
        text = run.governor.describe()
        assert "tdvs" in text
        assert "windows=" in text

    def test_governor_cannot_start_twice(self):
        run = SimulationRun(
            quick_config(dvs=quick_config().dvs.replaced(policy="edvs"))
        )
        run.run()
        with pytest.raises(RuntimeError):
            run.governor.start()


class TestMeInstructionHook:
    def test_on_instructions_reports_batches(self):
        from repro.npu.steps import Compute
        from test_microengine import make_me
        from test_traffic import make_packet

        sim = Simulator()
        batches = []

        def steps(packet):
            yield Compute(37)

        me = make_me(sim, [make_packet()], steps)
        me.on_instructions = lambda index, count: batches.append((index, count))
        me.start()
        sim.run(until_ps=200_000)
        assert (0, 37) in batches          # the app compute
        assert (0, 24) in batches          # poll batches afterwards
