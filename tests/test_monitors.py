"""Differential wall: compiled LOC monitors == the interpretive evaluator.

The compiled checking path (:mod:`repro.loc.monitor` over
:func:`repro.loc.codegen.compile_monitor_feed`) must be *provably*
interchangeable with the interpretive
:class:`~repro.loc.evaluator.StreamingEvaluator` path it replaced as
default.  Three layers of proof:

* **hypothesis** — random single-event formulas (offsets incl.
  negative, every relational operator, division) over random event
  streams: verdicts, violation lists and lhs statistics identical;
* **golden traces** — every catalog scenario simulated once, its trace
  checked by both paths with the real study-gate and builtin formulas:
  results identical object-for-object;
* **run_job identity** — a sweep job executed under
  ``REPRO_LOC_MONITOR=compiled`` and ``=interpreted`` produces
  byte-identical outcome dicts (the sweep/study bit-identity
  guarantee).
"""

import json

import pytest

from repro.config import DvsConfig, RunConfig, TrafficConfig
from repro.loc.analyzer import DistributionAnalyzer
from repro.loc.checker import build_checker, check_trace
from repro.loc.codegen import generate_monitor_source, monitor_event
from repro.loc.monitor import (
    MONITOR_MODE_ENV_VAR,
    CompiledMonitor,
    InterpretedMonitor,
    build_monitor,
    resolve_monitor_mode,
    run_monitor,
)
from repro.loc.parser import parse_formula
from repro.runner import run_simulation
from repro.scenarios import list_scenarios
from repro.sweep.spec import Job, SweepSpec
from repro.sweep.engine import run_job
from repro.trace.buffer import TraceBuffer
from repro.trace.events import TraceEvent


def synthetic_events(count=400, seed=11, names=("forward", "fifo")):
    """A deterministic pseudo-trace with monotone annotations."""
    import random

    rng = random.Random(seed)
    events = []
    cycle, time_us, energy, pkt, bits = 0, 0.0, 0.0, 0, 0
    for _ in range(count):
        cycle += rng.randint(1, 60)
        time_us += rng.random() * 2.5
        energy += rng.random() * 1.5
        pkt += 1
        bits += rng.randint(64, 1500) * 8
        name = names[0] if rng.random() < 0.7 else names[rng.randrange(len(names))]
        events.append(TraceEvent(name, cycle, time_us, energy, pkt, bits))
    return events


CHECKER_FORMULAS = [
    "time(forward[i+100]) - time(forward[i]) <= 50",
    "time(forward[i+7]) - time(forward[i-3]) <= 20",
    "total_pkt(forward[i+1]) - total_pkt(forward[i]) == 1",
    "energy(forward[i]) / (time(forward[i]) - time(forward[i-1])) >= 0.1",
    "time(forward[i-2]) - time(forward[i-1]) <= 5",
    "cycle(forward[i]) != 0",
    "total_bit(forward[i+5]) - total_bit(forward[i]) > 300",
    # Division by a delta that can be zero: undefined accounting.
    "energy(forward[i+2]) / (total_pkt(forward[i+2]) - total_pkt(forward[i+2])) < 1",
]

DISTRIBUTION_FORMULAS = [
    "(energy(forward[i+20]) - energy(forward[i])) / "
    "(time(forward[i+20]) - time(forward[i])) below <0.5, 2.25, 0.01>",
    "time(forward[i+20]) - time(forward[i]) in <10, 80, 5>",
    "(total_bit(forward[i+20]) - total_bit(forward[i])) / "
    "(time(forward[i+20]) - time(forward[i])) above <100, 3300, 10>",
]


class TestCompiledVsInterpreted:
    @pytest.mark.parametrize("formula", CHECKER_FORMULAS)
    def test_checker_identity_on_synthetic_trace(self, formula):
        events = synthetic_events()
        compiled = build_monitor(formula, mode="compiled")
        interpreted = build_monitor(formula, mode="interpreted")
        assert isinstance(interpreted, InterpretedMonitor)
        a = run_monitor(compiled, events)
        b = run_monitor(interpreted, events)
        assert a.to_dict() == b.to_dict()

    @pytest.mark.parametrize("formula", DISTRIBUTION_FORMULAS)
    def test_distribution_identity_on_synthetic_trace(self, formula):
        events = synthetic_events()
        compiled = build_monitor(formula, mode="compiled")
        assert isinstance(compiled, CompiledMonitor)
        interpreted = build_monitor(formula, mode="interpreted")
        assert run_monitor(compiled, events) == run_monitor(interpreted, events)

    def test_multi_event_formula_falls_back(self):
        formula = "cycle(forward[i]) - cycle(fifo[i]) <= 100000"
        monitor = build_monitor(formula, mode="compiled")
        assert not monitor.compiled  # fell back to the interpreter
        events = synthetic_events()
        baseline = build_checker(formula)
        for event in events:
            baseline.emit(event)
        assert run_monitor(monitor, events).to_dict() == (
            baseline.finish().to_dict()
        )

    def test_absolute_pin_falls_back(self):
        formula = "time(forward[i]) - time(forward[0]) >= 0"
        assert monitor_event(parse_formula(formula)) is None
        monitor = build_monitor(formula, mode="compiled")
        assert not monitor.compiled

    def test_generated_source_is_pure_python(self):
        source = generate_monitor_source(
            "time(forward[i+10]) - time(forward[i]) <= 50"
        )
        compile(source, "<test>", "exec")  # must be valid source
        assert "_make_monitor" in source
        assert "buf = [None] * 11" in source


class TestMonitorModeResolution:
    def test_default_is_compiled(self, monkeypatch):
        monkeypatch.delenv(MONITOR_MODE_ENV_VAR, raising=False)
        assert resolve_monitor_mode() == "compiled"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(MONITOR_MODE_ENV_VAR, "interpreted")
        assert resolve_monitor_mode() == "interpreted"
        assert not build_monitor(CHECKER_FORMULAS[0]).compiled

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(MONITOR_MODE_ENV_VAR, "interpreted")
        assert resolve_monitor_mode("compiled") == "compiled"

    def test_bad_mode_rejected(self, monkeypatch):
        from repro.errors import ExperimentError

        monkeypatch.setenv(MONITOR_MODE_ENV_VAR, "jit")
        with pytest.raises(ExperimentError):
            resolve_monitor_mode()

    def test_expect_kind_guard(self):
        from repro.errors import LocError

        with pytest.raises(LocError):
            build_monitor(DISTRIBUTION_FORMULAS[0], expect="checker")
        with pytest.raises(LocError):
            build_monitor(CHECKER_FORMULAS[0], expect="distribution")

    def test_check_trace_modes_agree(self):
        events = synthetic_events()
        compiled = check_trace(CHECKER_FORMULAS[0], events, mode="compiled")
        interpreted = check_trace(CHECKER_FORMULAS[0], events, mode="interpreted")
        assert compiled.to_dict() == interpreted.to_dict()


class TestGoldenScenarioTraces:
    """Both checking paths over every catalog scenario's real trace."""

    @pytest.fixture(scope="class")
    def scenario_traces(self):
        traces = {}
        for name in list_scenarios():
            buffer = TraceBuffer()
            run_simulation(
                RunConfig(
                    benchmark="ipfwdr",
                    duration_cycles=100_000,
                    seed=5,
                    traffic=TrafficConfig.for_scenario(name),
                    dvs=DvsConfig(policy="tdvs"),
                ),
                sinks=[buffer],
            )
            traces[name] = buffer.events
        return traces

    def test_every_catalog_scenario_agrees(self, scenario_traces):
        from repro.scenarios import get_scenario
        from repro.studies.spec import StudySpec

        spec = StudySpec(span=10)
        for name, events in scenario_traces.items():
            formulas = [
                a.formula for a in spec.assertions_for(get_scenario(name))
            ]
            for formula in formulas:
                compiled = build_monitor(formula, mode="compiled")
                assert compiled.compiled, formula
                result = run_monitor(compiled, events)
                baseline = build_checker(formula)
                for event in events:
                    baseline.emit(event)
                assert result.to_dict() == baseline.finish().to_dict(), (
                    name,
                    formula,
                )

    def test_distributions_agree_on_scenario_traces(self, scenario_traces):
        for name, events in scenario_traces.items():
            for formula in DISTRIBUTION_FORMULAS:
                compiled = run_monitor(
                    build_monitor(formula, mode="compiled"), events
                )
                baseline = DistributionAnalyzer(formula)
                for event in events:
                    baseline.emit(event)
                assert compiled == baseline.finish(), (name, formula)


class TestRunJobIdentity:
    """The sweep-layer guarantee: monitor mode never changes outcomes."""

    def _job(self) -> Job:
        spec = SweepSpec(
            policies=("tdvs",),
            thresholds_mbps=(1000.0,),
            windows_cycles=(40_000,),
            traffic=("scenario:flash_crowd",),
            duration_cycles=200_000,
            span=10,
            checks=(
                "time(forward[i+10]) - time(forward[i]) <= 1000",
                "total_pkt(forward[i+1]) - total_pkt(forward[i]) == 1",
            ),
        )
        return spec.jobs()[0]

    def test_outcome_bytes_identical_across_modes(self, monkeypatch):
        job = self._job()
        monkeypatch.setenv(MONITOR_MODE_ENV_VAR, "compiled")
        compiled = run_job(job)
        monkeypatch.setenv(MONITOR_MODE_ENV_VAR, "interpreted")
        interpreted = run_job(job)
        a = json.dumps(compiled.to_dict(), sort_keys=True)
        b = json.dumps(interpreted.to_dict(), sort_keys=True)
        assert a == b

    def test_check_results_populated(self):
        outcome = run_job(self._job())
        assert len(outcome.check_results) == 2
        assert all(c.instances_checked > 0 for c in outcome.check_results)


@pytest.mark.slow
class TestStudyIdentityAcrossModes:
    """A whole study report is byte-identical under either monitor mode."""

    def test_study_json_identical(self, monkeypatch):
        from repro.api import Session
        from repro.studies.report import render_json
        from repro.studies.spec import StudySpec

        spec = StudySpec(
            scenarios=("flash_crowd",),
            policies=("tdvs",),
            thresholds_mbps=(1000.0, 1400.0),
            windows_cycles=(40_000,),
            duration_cycles=200_000,
            span=10,
        )
        reports = {}
        for mode in ("compiled", "interpreted"):
            monkeypatch.setenv(MONITOR_MODE_ENV_VAR, mode)
            result = Session().study(spec)
            reports[mode] = render_json(result.policy_map)
        assert reports["compiled"] == reports["interpreted"]


# ---------------------------------------------------------------------------
# hypothesis: arbitrary formulas over arbitrary streams
# ---------------------------------------------------------------------------
hypothesis = pytest.importorskip(
    "hypothesis", reason="property tests need the 'test' extra (hypothesis)"
)

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

settings.register_profile("repro-monitors", deadline=None, max_examples=50)
settings.load_profile("repro-monitors")

_ANNOTATIONS = ("cycle", "time", "energy", "total_pkt", "total_bit")
_OPS = ("<=", "<", ">=", ">", "==", "!=")


@st.composite
def checker_formula(draw):
    """A random single-event checker formula with relative offsets."""

    def ref():
        annotation = draw(st.sampled_from(_ANNOTATIONS))
        offset = draw(st.integers(min_value=-5, max_value=8))
        index = "i" if offset == 0 else f"i{'+' if offset > 0 else '-'}{abs(offset)}"
        return f"{annotation}(forward[{index}])"

    def term():
        kind = draw(st.integers(min_value=0, max_value=2))
        if kind == 0:
            return ref()
        if kind == 1:
            return str(draw(st.integers(min_value=-50, max_value=50)))
        op = draw(st.sampled_from(("+", "-", "*", "/")))
        return f"({ref()} {op} {ref()})"

    op = draw(st.sampled_from(_OPS))
    return f"{term()} {op} {term()}"


@st.composite
def event_stream(draw):
    count = draw(st.integers(min_value=0, max_value=120))
    events = []
    cycle, time_us, energy, pkt, bits = 0, 0.0, 0.0, 0, 0
    for _ in range(count):
        cycle += draw(st.integers(min_value=0, max_value=40))
        time_us += draw(
            st.floats(min_value=0.0, max_value=3.0, allow_nan=False)
        )
        energy += draw(
            st.floats(min_value=0.0, max_value=2.0, allow_nan=False)
        )
        pkt += draw(st.integers(min_value=0, max_value=2))
        bits += draw(st.integers(min_value=0, max_value=12_000))
        name = draw(st.sampled_from(("forward", "fifo")))
        events.append(TraceEvent(name, cycle, time_us, energy, pkt, bits))
    return events


class TestMonitorProperties:
    @given(formula=checker_formula(), events=event_stream())
    def test_compiled_equals_interpreted(self, formula, events):
        compiled = build_monitor(formula, mode="compiled")
        interpreted = build_monitor(formula, mode="interpreted")
        a = run_monitor(compiled, events)
        b = run_monitor(interpreted, events)
        assert a.to_dict() == b.to_dict()

    @given(events=event_stream())
    def test_incremental_equals_batch(self, events):
        """Feeding one event at a time == feeding the full stream."""
        formula = "time(forward[i+3]) - time(forward[i]) <= 4"
        incremental = build_monitor(formula, mode="compiled")
        for event in events:
            incremental.feed_event(event)
        batch = run_monitor(build_monitor(formula, mode="compiled"), events)
        assert incremental.finish().to_dict() == batch.to_dict()
