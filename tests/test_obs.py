"""Tests for repro.obs: metrics, run telemetry, streaming anomaly gates.

Covers the metrics registry and its JSONL snapshot format (determinism,
merge rules, read/summarize/diff), the early-abort policy object and its
job-identity effects, the end-to-end early-abort demo (a doomed job
stops in strictly fewer simulated cycles than its full run), session
metrics aggregation, backend telemetry, the bench regression gate's
one-sided-scenario tolerance, and the SCHEMA.md version cross-check the
nightly CI enforces.
"""

import json
import os
import re

import pytest

from repro.errors import ExperimentError
from repro.obs.gates import EarlyAbortPolicy, build_gates
from repro.obs.metrics import (
    METRICS_SCHEMA_VERSION,
    MetricsRegistry,
    diff_snapshots,
    read_snapshot,
    summarize_snapshot,
)
from repro.sweep.engine import run_job
from repro.sweep.spec import SweepSpec
from repro.sweep.store import SweepOutcome


# ---------------------------------------------------------------------------
# Metrics registry + snapshot format
# ---------------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        registry.counter("jobs").inc()
        registry.counter("jobs").inc(2)
        registry.gauge("ewma").set(1.5)
        histogram = registry.histogram("lat", edges=[1.0, 2.0])
        histogram.observe(0.5)
        histogram.observe(1.5)
        histogram.observe(9.0)
        records = {r["name"]: r for r in registry.records()}
        assert records["jobs"]["value"] == 3
        assert records["ewma"]["value"] == 1.5
        assert records["lat"]["counts"] == [1, 1, 1]
        assert records["lat"]["count"] == 3

    def test_counter_cannot_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(ExperimentError):
            registry.counter("jobs").inc(-1)

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ExperimentError):
            registry.gauge("x")

    def test_histogram_edge_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("lat", edges=[1.0, 2.0])
        with pytest.raises(ExperimentError):
            registry.histogram("lat", edges=[1.0, 3.0])
        with pytest.raises(ExperimentError):
            registry.histogram("bad", edges=[2.0, 1.0])

    def test_snapshot_lines_sorted_and_stable(self):
        registry = MetricsRegistry()
        registry.gauge("b").set(2.0)
        registry.counter("z").inc(1)
        registry.counter("a").inc(1)
        lines = registry.snapshot_lines()
        header = json.loads(lines[0])
        assert header["schema"] == "repro.obs.metrics"
        assert header["version"] == METRICS_SCHEMA_VERSION
        names = [(json.loads(l)["type"], json.loads(l)["name"]) for l in lines[1:]]
        assert names == sorted(names)
        # Byte-stable: same contents, same lines.
        assert lines == registry.snapshot_lines()

    def test_merge_rules(self):
        a = MetricsRegistry()
        a.counter("jobs").inc(2)
        a.gauge("ewma").set(1.0)
        a.histogram("lat", edges=[1.0]).observe(0.5)
        b = MetricsRegistry()
        b.merge(a.records())
        b.merge(a.records())
        records = {r["name"]: r for r in b.records()}
        assert records["jobs"]["value"] == 4  # counters add
        assert records["ewma"]["value"] == 1.0  # gauges overwrite
        assert records["lat"]["count"] == 2  # histograms add bucket-wise
        assert records["lat"]["counts"] == [2, 0]

    def test_merge_telemetry_int_counter_float_gauge(self):
        registry = MetricsRegistry()
        registry.merge_telemetry(
            {"jobs_run": 3, "ewma_s": 0.5, "flag": True, "none": None},
            prefix="backend.serial.",
        )
        records = {r["name"]: r for r in registry.records()}
        assert records["backend.serial.jobs_run"]["type"] == "counter"
        assert records["backend.serial.ewma_s"]["type"] == "gauge"
        assert "backend.serial.flag" not in records
        assert "backend.serial.none" not in records

    def test_write_read_summarize_diff(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("jobs").inc(2)
        registry.gauge("ewma").set(0.25)
        base_path = str(tmp_path / "base.jsonl")
        registry.write_snapshot(base_path, meta={"command": "test"})
        header, records = read_snapshot(base_path)
        assert header["command"] == "test"
        assert len(records) == 2
        assert "jobs" in summarize_snapshot(records)
        registry.counter("jobs").inc(1)
        registry.counter("fresh").inc(1)
        current_path = str(tmp_path / "current.jsonl")
        registry.write_snapshot(current_path)
        _, current = read_snapshot(current_path)
        diff = diff_snapshots(records, current)
        assert "~ counter jobs: 2 -> 3" in diff
        assert "+ counter fresh = 1" in diff
        assert diff_snapshots(current, current) == "snapshots are identical"

    def test_read_rejects_foreign_and_versioned_files(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"not": "a snapshot"}\n')
        with pytest.raises(ExperimentError):
            read_snapshot(str(path))
        path.write_text(
            json.dumps({"schema": "repro.obs.metrics", "version": 999}) + "\n"
        )
        with pytest.raises(ExperimentError):
            read_snapshot(str(path))

    def test_schema_version_matches_schema_md(self):
        # The same gate nightly CI applies: METRICS_SCHEMA_VERSION may
        # only move together with src/repro/obs/SCHEMA.md.
        import repro.obs

        schema_md = os.path.join(
            os.path.dirname(repro.obs.__file__), "SCHEMA.md"
        )
        text = open(schema_md, encoding="utf-8").read()
        match = re.search(r"\*\*Schema version:\*\*\s*(\d+)", text)
        assert match is not None, "SCHEMA.md lost its version line"
        assert int(match.group(1)) == METRICS_SCHEMA_VERSION


# ---------------------------------------------------------------------------
# Early-abort policy + gates
# ---------------------------------------------------------------------------
def small_jobs(**early_abort):
    """A one-job sweep with the always-false forward-count check."""
    spec = SweepSpec(
        policies=("tdvs",),
        thresholds_mbps=(1000.0,),
        windows_cycles=(40_000,),
        duration_cycles=200_000,
        checks=("total_pkt(forward[i+1]) - total_pkt(forward[i]) == 2",),
    )
    jobs = spec.jobs()
    assert len(jobs) == 1
    if early_abort:
        policy = EarlyAbortPolicy(**early_abort)
        jobs = [job.gated(policy.to_dict()) for job in jobs]
    return jobs


class TestEarlyAbortPolicy:
    def test_defaults_and_enabled(self):
        policy = EarlyAbortPolicy()
        assert policy.enabled()  # check_unsat defaults on
        assert not EarlyAbortPolicy(check_unsat=False).enabled()
        assert EarlyAbortPolicy(
            check_unsat=False, loss_threshold=0.5
        ).enabled()

    def test_round_trip_and_validation(self):
        policy = EarlyAbortPolicy(check_interval=64, latency_quantile=0.95)
        assert EarlyAbortPolicy.from_dict(policy.to_dict()) == policy
        with pytest.raises(ExperimentError):
            EarlyAbortPolicy.from_dict({"bogus_knob": 1})
        with pytest.raises(ExperimentError):
            EarlyAbortPolicy(check_interval=0)
        with pytest.raises(ExperimentError):
            EarlyAbortPolicy(latency_quantile=1.5)

    def test_gated_job_changes_identity(self):
        (plain,) = small_jobs()
        policy = EarlyAbortPolicy()
        gated = plain.gated(policy.to_dict())
        assert gated.job_id != plain.job_id
        assert gated.early_abort == policy.to_dict()
        # Idempotent: re-gating with the same policy keeps the id.
        assert gated.gated(policy.to_dict()).job_id == gated.job_id
        assert plain.gated(None) is plain
        # Serialization round-trips the gate.
        from repro.sweep.spec import Job

        assert Job.from_dict(gated.to_dict()) == gated
        assert "early_abort" not in plain.to_dict()

    def test_build_gates_selects_by_policy(self):
        from repro.loc.monitor import build_monitor

        monitor = build_monitor(
            "total_pkt(forward[i+1]) - total_pkt(forward[i]) == 1",
            mode="compiled",
        )
        gates = build_gates(EarlyAbortPolicy(), [monitor])
        assert len(gates) == 1
        assert not build_gates(
            EarlyAbortPolicy(check_unsat=False), [monitor]
        )


class TestEarlyAbortEndToEnd:
    def test_doomed_job_aborts_in_fewer_cycles(self):
        # The acceptance demo: the forward-count check asks every
        # packet to advance the counter by 2, which is unsatisfiable —
        # the gate must stop the run strictly before full duration.
        (full_job,) = small_jobs()
        full = run_job(full_job)
        (doomed,) = small_jobs(check_unsat=True, check_interval=16)
        aborted = run_job(doomed)
        assert not full.result.aborted_early
        assert aborted.result.aborted_early
        assert "unsatisfiable" in aborted.result.abort_reason
        assert aborted.result.totals.duration_s < full.result.totals.duration_s
        assert aborted.job_id != full.job_id

    def test_abort_fields_serialize_only_when_set(self):
        (full_job,) = small_jobs()
        full = run_job(full_job)
        record = full.to_dict()
        assert "aborted_early" not in record["result"]
        assert SweepOutcome.from_dict(record) is not None
        (doomed,) = small_jobs(check_unsat=True, check_interval=16)
        aborted = run_job(doomed)
        record = aborted.to_dict()
        assert record["result"]["aborted_early"] is True
        restored = SweepOutcome.from_dict(record)
        assert restored.result.aborted_early
        assert restored.result.abort_reason == aborted.result.abort_reason

    def test_outcome_obs_counts_are_deterministic(self):
        (job,) = small_jobs()
        first, second = run_job(job), run_job(job)
        assert first.obs is not None
        assert first.obs == second.obs
        assert first.obs["channels"]["forward"]["published"] > 0

    def test_obs_key_roundtrip_and_absent_for_legacy_records(self):
        (job,) = small_jobs()
        outcome = run_job(job)
        assert SweepOutcome.from_dict(outcome.to_dict()).obs == outcome.obs
        legacy = outcome.to_dict()
        del legacy["obs"]
        assert SweepOutcome.from_dict(legacy).obs is None


# ---------------------------------------------------------------------------
# Session aggregation + backend telemetry
# ---------------------------------------------------------------------------
class TestSessionMetrics:
    def test_sweep_populates_metrics_and_snapshot(self, tmp_path):
        from repro.api import Session

        session = Session()
        jobs = small_jobs()
        session.sweep(jobs)
        names = {r["name"] for r in session.metrics.records()}
        assert "session.outcomes" in names
        assert "trace.forward.published" in names
        assert "backend.serial.jobs_run" in names
        path = str(tmp_path / "metrics.jsonl")
        session.write_metrics(path, meta={"jobs": len(jobs)})
        header, records = read_snapshot(path)
        assert header["jobs"] == 1
        assert records

    def test_on_abort_hook_fires(self):
        from repro.api import EventHooks, ExecutionPolicy, Session

        aborted = []
        session = Session(
            execution=ExecutionPolicy(
                early_abort=EarlyAbortPolicy(check_interval=16)
            )
        )
        outcomes = session.sweep(
            small_jobs(), hooks=EventHooks(on_abort=aborted.append)
        )
        assert len(aborted) == 1
        assert aborted[0].result.aborted_early
        assert outcomes[0].result.aborted_early
        counters = {r["name"]: r["value"] for r in session.metrics.records()}
        assert counters["session.outcomes_aborted_early"] == 1

    def test_execution_policy_normalizes_early_abort_dict(self):
        from repro.api import ExecutionPolicy
        from repro.errors import ExperimentError as ApiError

        policy = ExecutionPolicy(early_abort={"check_interval": 8})
        assert isinstance(policy.early_abort, EarlyAbortPolicy)
        assert policy.early_abort.check_interval == 8
        with pytest.raises(ApiError):
            ExecutionPolicy(early_abort=42)

    def test_serial_backend_telemetry(self):
        from repro.backends.local import SerialBackend

        backend = SerialBackend()
        list(backend.run(small_jobs()))
        assert backend.telemetry() == {"jobs_run": 1}


# ---------------------------------------------------------------------------
# Bench gate tolerance (satellite: one-sided scenario keys)
# ---------------------------------------------------------------------------
class TestCompareBench:
    def _artifact(self, scenarios):
        return {
            "totals": {"events_per_s_checking": {"compiled": 1000.0}},
            "scenarios": {
                name: {"checking": {"compiled": {"events_per_s": value}}}
                for name, value in scenarios.items()
            },
        }

    def test_one_sided_scenarios_warn_and_skip(self):
        from repro.bench import compare_bench

        baseline = self._artifact({"old_only": 1000.0, "both": 1000.0})
        current = self._artifact({"new_only": 1000.0, "both": 900.0})
        warnings = compare_bench(baseline, current, tolerance=0.20)
        assert any("old_only" in w and "skipping" in w for w in warnings)
        assert any("new_only" in w and "skipping" in w for w in warnings)
        assert not any("both" in w for w in warnings)

    def test_regression_still_detected_on_shared_keys(self):
        from repro.bench import compare_bench

        baseline = self._artifact({"both": 1000.0})
        current = self._artifact({"both": 500.0})
        warnings = compare_bench(baseline, current, tolerance=0.20)
        assert any("both.compiled" in w for w in warnings)

    def test_schema_drifted_entries_skip_quietly(self):
        from repro.bench import compare_bench

        baseline = {"scenarios": {"x": {}}, "totals": {}}
        current = {"scenarios": {"x": {}}, "totals": {}}
        assert compare_bench(baseline, current) == []


# ---------------------------------------------------------------------------
# Fleet telemetry counters (coordinator state machine, no sockets)
# ---------------------------------------------------------------------------
class TestFleetTelemetry:
    def test_state_counters_track_lifecycle(self):
        from repro.backends.distributed import LeaseClock, _State

        jobs = small_jobs()
        state = _State(jobs, LeaseClock(initial_s=5.0), max_retries=2, log=None)
        grant = state.grant("w1")
        assert grant["type"] == "job"
        state.heartbeat(jobs[0].job_id, "w1")
        state.heartbeat(jobs[0].job_id, "w1")
        outcome = run_job(jobs[0])
        state.complete(jobs[0].job_id, outcome)
        state.complete(jobs[0].job_id, outcome)  # duplicate dropped
        state.absorb_worker_telemetry({"jobs_run": 1, "heartbeats_sent": 2})
        state.absorb_worker_telemetry("not a dict")  # ignored
        counters = state.counters
        assert counters["jobs_granted"] == 1
        assert counters["jobs_completed"] == 1
        assert counters["duplicates_dropped"] == 1
        assert counters["heartbeats"] == 2
        assert counters["lease_renewals"] == 2
        assert counters["worker_jobs_reported"] == 1
        assert counters["worker_heartbeats_reported"] == 2
        assert state.heartbeat_ewma_s is not None

    def test_requeue_counts(self):
        from repro.backends.distributed import LeaseClock, _State

        jobs = small_jobs()
        state = _State(jobs, LeaseClock(initial_s=5.0), max_retries=2, log=None)
        state.grant("w1")
        state.fail_attempt(jobs[0].job_id, "w1", "lost")
        assert state.counters["jobs_requeued"] == 1
        assert len(state.pending) == 1

    def test_backend_telemetry_before_run_is_empty(self):
        from repro.backends.distributed import DistributedBackend

        backend = DistributedBackend(port=0)
        try:
            assert backend.telemetry() == {}
        finally:
            backend.close()
