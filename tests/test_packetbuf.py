"""Tests for the SDRAM packet-buffer allocator."""

import pytest

from repro.errors import MemoryModelError
from repro.npu.packetbuf import PacketBufferPool


def test_allocate_release_cycle():
    pool = PacketBufferPool(8192, buffer_bytes=2048)
    assert pool.num_buffers == 4
    handles = [pool.allocate() for _ in range(4)]
    assert None not in handles
    assert len(set(handles)) == 4
    assert pool.in_use == 4
    assert pool.allocate() is None
    assert pool.failures == 1
    pool.release(handles[0])
    assert pool.allocate() == handles[0]


def test_peak_tracking():
    pool = PacketBufferPool(8192)
    a = pool.allocate()
    b = pool.allocate()
    pool.release(a)
    pool.release(b)
    assert pool.peak_in_use == 2
    assert pool.in_use == 0


def test_double_free_rejected():
    pool = PacketBufferPool(8192)
    handle = pool.allocate()
    pool.release(handle)
    with pytest.raises(MemoryModelError):
        pool.release(handle)


def test_bad_handle_rejected():
    pool = PacketBufferPool(8192)
    with pytest.raises(MemoryModelError):
        pool.release(99)
    with pytest.raises(MemoryModelError):
        pool.address_of(99)


def test_addresses_distinct_and_aligned():
    pool = PacketBufferPool(8192, buffer_bytes=2048)
    addresses = {pool.address_of(h) for h in range(pool.num_buffers)}
    assert len(addresses) == pool.num_buffers
    assert all(a % 2048 == 0 for a in addresses)


def test_construction_validation():
    with pytest.raises(MemoryModelError):
        PacketBufferPool(100, buffer_bytes=2048)
    with pytest.raises(MemoryModelError):
        PacketBufferPool(2048, buffer_bytes=0)
