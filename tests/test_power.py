"""Tests for the power model and energy accounting."""

import pytest

from repro.config import MemoryConfig, PowerConfig
from repro.npu.memqueue import build_memories
from repro.npu.microengine import Microengine
from repro.power.model import MePowerModel, PowerAccountant
from repro.power.overhead import DvsOverheadMeter
from repro.sim.clock import ClockDomain
from repro.sim.kernel import Simulator
from repro.units import mhz

from test_microengine import ListSource


class TestMePowerModel:
    def test_calibration_anchor(self):
        config = PowerConfig(me_active_w_max=0.22)
        model = MePowerModel(config, mhz(600), 1.3)
        assert model.active_w(mhz(600), 1.3) == pytest.approx(0.22)

    def test_scaling_physics(self):
        config = PowerConfig(me_active_w_max=0.22)
        model = MePowerModel(config, mhz(600), 1.3)
        p_top = model.active_w(mhz(600), 1.3)
        p_bottom = model.active_w(mhz(400), 1.1)
        # (400/600) * (1.1/1.3)^2 = 0.4775...
        assert p_bottom / p_top == pytest.approx((400 / 600) * (1.1 / 1.3) ** 2)

    def test_idle_fraction(self):
        config = PowerConfig(me_active_w_max=0.2, me_idle_fraction=0.25)
        model = MePowerModel(config, mhz(600), 1.3)
        assert model.idle_w(mhz(600), 1.3) == pytest.approx(0.05)


def make_idle_me(sim):
    clock = ClockDomain(sim, mhz(600), "me0")
    sram, sdram, scratch, _ = build_memories(sim, MemoryConfig())
    return Microengine(
        sim, clock, 0, "rx", ListSource([]), lambda p: iter(()),
        {"sram": sram, "sdram": sdram, "scratch": scratch},
    )


class TestPowerAccountant:
    def test_base_power_integrates(self):
        sim = Simulator()
        config = PowerConfig(base_w=0.1)
        accountant = PowerAccountant(sim, config, MePowerModel(config, mhz(600), 1.3))
        sim.run(until_ps=1_000_000_000)  # 1 ms
        assert accountant.total_energy_j() == pytest.approx(0.1 * 1e-3)
        assert accountant.mean_power_w() == pytest.approx(0.1)

    def test_me_power_follows_state(self):
        sim = Simulator()
        config = PowerConfig(me_active_w_max=0.2, me_idle_fraction=0.5, base_w=0.0)
        accountant = PowerAccountant(sim, config, MePowerModel(config, mhz(600), 1.3))
        me = make_idle_me(sim)
        accountant.attach_me(me)
        me.start()  # polls forever: busy
        sim.run(until_ps=1_000_000_000)
        # Busy ME at top VF: ~0.2 W for 1 ms = 0.2 mJ.
        assert accountant.me_energy_j(0) == pytest.approx(0.2e-3, rel=0.01)

    def test_memory_energy_charged(self):
        sim = Simulator()
        config = PowerConfig(sdram_access_nj=5.0, sdram_byte_nj=0.1, base_w=0.0)
        accountant = PowerAccountant(sim, config, MePowerModel(config, mhz(600), 1.3))
        accountant.on_memory_energy("sdram", 100)
        # 5 nJ + 100 * 0.1 nJ = 15 nJ
        assert accountant.total_energy_j() == pytest.approx(15e-9)
        assert accountant.memory_energy_j["sdram"] == pytest.approx(15e-9)

    def test_total_energy_uj(self):
        sim = Simulator()
        config = PowerConfig(base_w=1.0)
        accountant = PowerAccountant(sim, config, MePowerModel(config, mhz(600), 1.3))
        sim.run(until_ps=1_000_000)  # 1 us at 1 W = 1 uJ
        assert accountant.total_energy_uj() == pytest.approx(1.0)

    def test_breakdown_contains_components(self):
        sim = Simulator()
        config = PowerConfig()
        accountant = PowerAccountant(sim, config, MePowerModel(config, mhz(600), 1.3))
        me = make_idle_me(sim)
        accountant.attach_me(me)
        accountant.on_memory_energy("sram", 4)
        sim.run(until_ps=1_000_000)
        breakdown = accountant.breakdown_w()
        assert "me0" in breakdown
        assert "sram" in breakdown
        assert "base" in breakdown


class TestDvsOverheadMeter:
    def test_charges_accumulate(self):
        sim = Simulator()
        config = PowerConfig(
            tdvs_adder_nj_per_packet=0.5, edvs_counter_nj_per_window=2.0
        )
        accountant = PowerAccountant(sim, config, MePowerModel(config, mhz(600), 1.3))
        meter = DvsOverheadMeter(accountant, config)
        for _ in range(10):
            meter.on_packet_arrival()
        meter.on_window_evaluation()
        assert meter.packet_charges == 10
        assert meter.window_charges == 1
        assert meter.total_overhead_j() == pytest.approx((10 * 0.5 + 2.0) * 1e-9)

    def test_overhead_well_under_one_percent(self):
        """The paper's sub-1% claim holds at realistic packet rates."""
        config = PowerConfig()
        # 500 kpps for 1 second vs ~1.4 W chip power.
        adder_w = 500_000 * config.tdvs_adder_nj_per_packet * 1e-9
        assert adder_w / 1.4 < 0.01
