"""Property-based tests (hypothesis) for core invariants."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.md4_core import md4_blocks_for, md4_digest
from repro.apps.routing import RoutingTrie, brute_force_lpm
from repro.loc.analyzer import DistributionAnalyzer, build_edges
from repro.loc.parser import parse_formula
from repro.sim.clock import ClockDomain
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams, derive_seed
from repro.traffic.sizes import PacketSizeMix
from repro.units import cycles_to_ps, ps_to_cycles


# ---------------------------------------------------------------------------
# Kernel ordering
# ---------------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_kernel_delivers_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append((sim.now_ps, d)))
    sim.run()
    times = [t for t, _ in fired]
    assert times == sorted(times)
    assert len(fired) == len(delays)


# ---------------------------------------------------------------------------
# Clock conversions
# ---------------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=2_000_000),  # segment ps
            st.sampled_from([400e6, 450e6, 500e6, 550e6, 600e6]),
        ),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=60, deadline=None)
def test_clock_cycles_monotone_across_changes(segments):
    sim = Simulator()
    clock = ClockDomain(sim, 600e6)
    previous_cycles = 0.0
    now = 0
    for span_ps, freq in segments:
        clock.set_frequency(freq)
        now += span_ps
        sim.run(until_ps=now)
        cycles = clock.cycles_now
        assert cycles >= previous_cycles
        previous_cycles = cycles


@given(
    st.integers(min_value=1, max_value=10_000_000),
    st.sampled_from([400e6, 500e6, 600e6, 1e9]),
)
@settings(max_examples=100, deadline=None)
def test_cycles_time_round_trip(cycles, freq):
    ps = cycles_to_ps(cycles, freq)
    back = ps_to_cycles(ps, freq)
    assert math.isclose(back, cycles, rel_tol=1e-9)


# ---------------------------------------------------------------------------
# RNG stream derivation
# ---------------------------------------------------------------------------
@given(st.integers(), st.text(min_size=1, max_size=30))
@settings(max_examples=80, deadline=None)
def test_derived_seeds_stable_and_distinct_across_names(seed, name):
    assert derive_seed(seed, name) == derive_seed(seed, name)
    assert derive_seed(seed, name) != derive_seed(seed, name + "x")


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=30, deadline=None)
def test_rng_streams_independent(seed):
    streams = RngStreams(seed)
    a_first = streams.get("a").random()
    # Drawing from "b" must not disturb "a"'s sequence.
    streams_again = RngStreams(seed)
    streams_again.get("b").random()
    a_second = streams_again.get("a").random()
    assert a_first == a_second


# ---------------------------------------------------------------------------
# LOC parser round-trip
# ---------------------------------------------------------------------------
_annotations = st.sampled_from(["cycle", "time", "energy", "total_pkt", "total_bit"])
_events = st.sampled_from(["forward", "fifo", "m2_pipeline", "enq", "deq"])
_offsets = st.integers(min_value=-50, max_value=150)


@st.composite
def _ref(draw):
    annotation = draw(_annotations)
    event = draw(_events)
    offset = draw(_offsets)
    index = "i" if offset == 0 else (f"i+{offset}" if offset > 0 else f"i-{-offset}")
    return f"{annotation}({event}[{index}])"


@st.composite
def _expr(draw, depth=0):
    if depth >= 2 or draw(st.booleans()):
        choice = draw(st.integers(min_value=0, max_value=2))
        if choice == 0:
            return draw(_ref())
        if choice == 1:
            return str(draw(st.integers(min_value=0, max_value=10_000)))
        return draw(_ref())
    op = draw(st.sampled_from(["+", "-", "*", "/"]))
    left = draw(_expr(depth=depth + 1))
    right = draw(_expr(depth=depth + 1))
    return f"({left} {op} {right})"


@given(_expr(), st.sampled_from(["<=", "<", ">=", ">", "==", "!="]), _expr())
@settings(max_examples=80, deadline=None)
def test_checker_formula_unparse_round_trip(lhs, op, rhs):
    text = f"{lhs} {op} {rhs}"
    formula = parse_formula(text)
    assert parse_formula(formula.unparse()).unparse() == formula.unparse()


@given(
    _expr(),
    st.sampled_from(["in", "below", "above"]),
    st.floats(min_value=-100, max_value=100, allow_nan=False),
    st.floats(min_value=0.01, max_value=50, allow_nan=False),
    st.floats(min_value=0.01, max_value=10, allow_nan=False),
)
@settings(max_examples=80, deadline=None)
def test_distribution_formula_unparse_round_trip(expr, mode, low, span, step):
    text = f"{expr} {mode} <{low}, {low + span}, {step}>"
    formula = parse_formula(text)
    assert parse_formula(formula.unparse()).unparse() == formula.unparse()


# ---------------------------------------------------------------------------
# Distribution semantics
# ---------------------------------------------------------------------------
@given(
    st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
             min_size=1, max_size=200),
    st.sampled_from(["in", "below", "above"]),
)
@settings(max_examples=80, deadline=None)
def test_distribution_mass_conserved(values, mode):
    analyzer = DistributionAnalyzer(f"cycle(e[i]) {mode} <0, 100, 10>")
    for value in values:
        analyzer.observe(value)
    result = analyzer.finish()
    assert sum(result.counts) == result.total == len(values)
    curve = result.curve()
    fractions = [f for _, f in curve]
    if mode == "above":
        assert all(a >= b - 1e-12 for a, b in zip(fractions, fractions[1:]))
    else:
        assert all(a <= b + 1e-12 for a, b in zip(fractions, fractions[1:]))
    assert all(0.0 <= f <= 1.0 for f in fractions)


@given(
    st.floats(min_value=-100, max_value=100, allow_nan=False),
    st.integers(min_value=1, max_value=300),
    st.floats(min_value=0.001, max_value=10, allow_nan=False),
)
@settings(max_examples=80, deadline=None)
def test_build_edges_count_and_endpoints(low, steps, step):
    high = low + steps * step
    edges = build_edges(low, high, step)
    assert len(edges) == steps + 1
    assert edges[0] == low
    assert edges[-1] == high
    assert all(b > a for a, b in zip(edges, edges[1:]))


# ---------------------------------------------------------------------------
# LPM trie vs brute force
# ---------------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2**32 - 1),
            st.integers(min_value=0, max_value=32),
            st.integers(min_value=0, max_value=15),
        ),
        max_size=60,
    ),
    st.lists(st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=30),
)
@settings(max_examples=60, deadline=None)
def test_trie_matches_brute_force(routes, addresses):
    trie = RoutingTrie(default_port=0)
    # Deduplicate (prefix-bits, length) keys keeping the last, mirroring
    # the trie's overwrite semantics for the brute-force reference.
    seen = {}
    for prefix, length, port in routes:
        mask = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF if length else 0
        seen[(prefix & mask, length)] = port
        trie.insert(prefix, length, port)
    reference_routes = [(p, l, port) for (p, l), port in seen.items()]
    for address in addresses:
        expected = brute_force_lpm(reference_routes, address)
        assert trie.lookup(address)[0] == expected


# ---------------------------------------------------------------------------
# MD4
# ---------------------------------------------------------------------------
@given(st.binary(max_size=500))
@settings(max_examples=60, deadline=None)
def test_md4_digest_shape_and_determinism(message):
    digest = md4_digest(message)
    assert len(digest) == 16
    assert digest == md4_digest(message)


@given(st.binary(min_size=1, max_size=300))
@settings(max_examples=60, deadline=None)
def test_md4_sensitive_to_single_bit(message):
    flipped = bytes([message[0] ^ 1]) + message[1:]
    assert md4_digest(message) != md4_digest(flipped)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=80, deadline=None)
def test_md4_blocks_matches_padding_rule(length):
    blocks = md4_blocks_for(length)
    padded = length + 1 + 8
    expected = (padded + 63) // 64
    assert blocks == expected


# ---------------------------------------------------------------------------
# Packet size mixes
# ---------------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=40, max_value=1500),
            st.floats(min_value=0.01, max_value=10, allow_nan=False),
        ),
        min_size=1,
        max_size=8,
    ),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=60, deadline=None)
def test_size_mix_samples_only_listed_sizes(points, seed):
    mix = PacketSizeMix(points)
    listed = {size for size, _ in points}
    rng = random.Random(seed)
    for _ in range(50):
        assert mix.sample(rng) in listed
    low = min(listed)
    high = max(listed)
    assert low <= mix.mean_bytes <= high
