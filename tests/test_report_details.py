"""Focused tests for distribution-report rendering details."""

from repro.loc.analyzer import analyze_trace

from conftest import make_event


def events_of(values):
    return [make_event("e", cycle=v) for v in values]


def test_in_mode_report_prefers_populated_bins():
    # Values concentrated in two bins of a wide range: the report must
    # show those bins rather than a uniform thinning of empty ones.
    values = [5, 6, 7, 95, 96] * 10
    result = analyze_trace("cycle(e[i]) in <0, 1000, 10>", events_of(values))
    report = result.report(max_rows=6)
    assert "(0, 10]" in report
    assert "(90, 100]" in report
    assert "60.00%" in report  # 30 of 50 values in (0, 10]


def test_in_mode_report_falls_back_when_single_bin():
    result = analyze_trace("cycle(e[i]) in <0, 1000, 10>", events_of([5] * 4))
    report = result.report(max_rows=4)
    assert "100.00%" in report


def test_below_mode_report_shows_cutoffs():
    result = analyze_trace("cycle(e[i]) below <0, 100, 10>",
                           events_of(list(range(0, 100, 5))))
    report = result.report(max_rows=5)
    lines = [line for line in report.splitlines() if "%" in line]
    assert len(lines) == 5


def test_report_without_row_cap_shows_everything():
    result = analyze_trace("cycle(e[i]) below <0, 100, 10>", events_of([50]))
    report = result.report(max_rows=None)
    lines = [line for line in report.splitlines() if "%" in line]
    assert len(lines) == 11  # all cutoffs 0..100
