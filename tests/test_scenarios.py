"""Tests for the scenario subsystem: specs, catalog, playback."""

import random

import pytest

from repro.config import RunConfig, TrafficConfig
from repro.errors import ConfigError, TrafficError
from repro.runner import resolve_offered_load_bps, run_simulation
from repro.scenarios import (
    PiecewiseArrivalProcess,
    Scenario,
    ScenarioSegment,
    ScenarioTrafficSource,
    all_scenarios,
    get_scenario,
    list_scenarios,
    register_scenario,
)
from repro.sim.kernel import Simulator
from repro.traffic.arrivals import ConstantBitRate
from repro.traffic.sizes import ALL_MINIMUM, IMIX_CLASSIC

PS_PER_MS = 10**9


def two_phase_scenario(name="two_phase"):
    return Scenario(
        name=name,
        title="Two phases",
        description="CBR low then CBR high.",
        segments=(
            ScenarioSegment(weight=1.0, offered_load_mbps=200.0, process="cbr"),
            ScenarioSegment(weight=1.0, offered_load_mbps=800.0, process="cbr"),
        ),
    )


class TestScenarioSpec:
    def test_catalog_scenarios_validate(self):
        assert len(list_scenarios()) >= 8
        for scenario in all_scenarios():
            scenario.validate()

    def test_dict_round_trip(self):
        for scenario in all_scenarios():
            rebuilt = Scenario.from_dict(scenario.to_dict())
            assert rebuilt == scenario

    def test_from_dict_rejects_unknown_keys(self):
        data = two_phase_scenario().to_dict()
        data["bogus"] = 1
        with pytest.raises(TrafficError):
            Scenario.from_dict(data)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(TrafficError):
            get_scenario("no_such_workload")

    def test_register_rejects_duplicates(self):
        scenario = get_scenario("flash_crowd")
        with pytest.raises(TrafficError):
            register_scenario(scenario)
        register_scenario(scenario, replace=True)  # idempotent with replace

    def test_empty_segments_rejected(self):
        with pytest.raises(TrafficError):
            Scenario(name="x", title="x", description="x", segments=()).validate()

    def test_segment_bad_mix_rejected(self):
        with pytest.raises(TrafficError):
            ScenarioSegment(weight=1.0, offered_load_mbps=100.0, size_mix="jumbo").validate()

    def test_mean_and_peak_loads(self):
        scenario = two_phase_scenario()
        assert scenario.mean_load_mbps == pytest.approx(500.0)
        assert scenario.peak_load_mbps == 800.0

    def test_segment_spans_cover_duration(self):
        scenario = get_scenario("flash_crowd")
        spans = scenario.segment_spans_ps(1_000_000)
        assert spans[-1][0] == 1_000_000
        ends = [end for end, _ in spans]
        assert ends == sorted(ends)
        assert len(spans) == len(scenario.segments)

    def test_segment_specs_export(self):
        scenario = two_phase_scenario()
        specs = scenario.to_segment_specs(duration_s=2.0)
        assert [spec.offered_load_bps for spec in specs] == [2e8, 8e8]
        assert sum(spec.duration_s for spec in specs) == pytest.approx(2.0)


class TestPiecewisePlayback:
    def test_piecewise_rates_per_segment(self):
        # 1 Mpps for the first ms, 0.25 Mpps for the second.
        process = PiecewiseArrivalProcess(
            [
                (PS_PER_MS, ConstantBitRate(8e9, 8000)),
                (2 * PS_PER_MS, ConstantBitRate(2e9, 8000)),
            ]
        )
        rng = random.Random(0)
        now = 0
        first = second = 0
        while now < 2 * PS_PER_MS:
            now += process.next_gap_ps(rng)
            if now <= PS_PER_MS:
                first += 1
            elif now <= 2 * PS_PER_MS:
                second += 1
        assert first == 1000
        assert second == 250

    def test_last_segment_is_open_ended(self):
        process = PiecewiseArrivalProcess([(1000, ConstantBitRate(8e9, 8000))])
        rng = random.Random(0)
        total = sum(process.next_gap_ps(rng) for _ in range(50))
        assert total > 1000  # keeps generating past its nominal end

    def test_boundaries_must_increase(self):
        with pytest.raises(TrafficError):
            PiecewiseArrivalProcess(
                [
                    (1000, ConstantBitRate(8e9, 8000)),
                    (1000, ConstantBitRate(8e9, 8000)),
                ]
            )

    def test_mean_rate_weighted(self):
        process = PiecewiseArrivalProcess(
            [
                (PS_PER_MS, ConstantBitRate(8e9, 8000)),
                (2 * PS_PER_MS, ConstantBitRate(2e9, 8000)),
            ]
        )
        assert process.mean_rate_pps == pytest.approx(625_000.0)

    def test_size_mix_follows_segments(self):
        scenario = Scenario(
            name="mix_switch",
            title="imix then min64",
            description="test",
            segments=(
                ScenarioSegment(
                    weight=1.0, offered_load_mbps=500.0, process="cbr"
                ),
                ScenarioSegment(
                    weight=1.0,
                    offered_load_mbps=500.0,
                    process="cbr",
                    size_mix="min64",
                ),
            ),
        )
        sim = Simulator()
        source = ScenarioTrafficSource.from_scenario(
            sim, lambda port, packet: None, scenario, duration_ps=2 * PS_PER_MS
        )
        assert source.mix_for(0) is IMIX_CLASSIC
        assert source.mix_for(PS_PER_MS + 1) is ALL_MINIMUM
        late = source._make_packet(2 * PS_PER_MS - 1)
        assert late.size_bytes == 64


class TestScenarioRuns:
    def test_traffic_config_scenario_validation(self):
        TrafficConfig.for_scenario("flash_crowd").validate()
        with pytest.raises(ConfigError):
            TrafficConfig.for_scenario("no_such_workload").validate()
        with pytest.raises(ConfigError):
            # Scenario and explicit load together are ambiguous.
            TrafficConfig(scenario="flash_crowd", offered_load_mbps=500.0).validate()

    def test_resolve_offered_load_uses_scenario_mean(self):
        config = RunConfig(traffic=TrafficConfig.for_scenario("flash_crowd"))
        expected = get_scenario("flash_crowd").mean_load_mbps * 1e6
        assert resolve_offered_load_bps(config) == pytest.approx(expected)

    def test_run_config_scenario_round_trip(self):
        config = RunConfig(traffic=TrafficConfig.for_scenario("ddos_min64"))
        assert RunConfig.from_dict(config.to_dict()) == config


def test_every_catalog_scenario_runs():
    """Every catalog scenario runs end to end at the bench profile."""
    from repro.experiments.common import cycles_for

    for name in list_scenarios():
        config = RunConfig(
            duration_cycles=cycles_for("bench"),
            seed=5,
            traffic=TrafficConfig.for_scenario(name),
        )
        result = run_simulation(config)
        assert result.totals.forwarded_packets > 0, name
        assert result.totals.mean_power_w > 0, name


def test_scenario_runs_are_deterministic():
    config = RunConfig(
        duration_cycles=150_000,
        seed=9,
        traffic=TrafficConfig.for_scenario("bursty_onoff"),
    )
    first = run_simulation(config)
    second = run_simulation(config)
    assert first.totals == second.totals
