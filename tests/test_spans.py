"""Tests for the dual-clock span layer (repro.obs.spans) and exporters.

Covers the recorder contract (env gate, malformed-record tolerance,
JSONL round trip), the determinism acceptance property (sim spans
byte-identical across backends and monitor modes; study JSON untouched
by the span switch), the distributed-protocol compatibility story (a
worker without the ``spans`` key still drains sweeps), and the two
exporters (Perfetto trace-event JSON, HTML study report).
"""

import json
import os
import re
import threading

import pytest

from repro.backends import DistributedBackend
from repro.backends.worker import run_worker
from repro.cli import main
from repro.errors import ExperimentError
from repro.loc.monitor import MONITOR_MODE_ENV_VAR
from repro.obs.metrics import METRICS_SCHEMA_VERSION, MetricsRegistry
from repro.obs.perfetto import render_perfetto, to_perfetto, track_types
from repro.obs.spans import (
    OBS_SPANS_ENV_VAR,
    SPAN_SCHEMA_TAG,
    SPAN_SCHEMA_VERSION,
    SpanRecorder,
    get_recorder,
    read_spans,
    reset_recorder,
    spans_enabled,
    summarize_spans,
)
from repro.studies import StudySpec
from repro.studies.report import render_html, render_json
from repro.sweep import SweepSpec, run_sweep

#: Short, deterministic grid shared by the execution tests (the
#: test_backends shape).
FAST = dict(duration_cycles=120_000, process="cbr", seeds=(11,))


def small_spec(**overrides) -> SweepSpec:
    settings = dict(
        policies=("none", "tdvs"),
        thresholds_mbps=(1200.0,),
        windows_cycles=(40_000,),
        traffic=("load:1000",),
        span=20,
        **FAST,
    )
    settings.update(overrides)
    return SweepSpec(**settings)


def sim_spans_of(outcomes):
    """The deterministic payload under test, in job order."""
    return [(o.job_id, (o.obs or {}).get("spans")) for o in outcomes]


@pytest.fixture
def spans_on(monkeypatch):
    """Default-on recording with a fresh per-process recorder."""
    monkeypatch.delenv(OBS_SPANS_ENV_VAR, raising=False)
    recorder = reset_recorder()
    yield recorder
    reset_recorder()


# ---------------------------------------------------------------------------
# Schema gate + recorder contract
# ---------------------------------------------------------------------------
class TestSchemaGate:
    def test_span_schema_version_matches_schema_md(self):
        # The same gate nightly CI applies: SPAN_SCHEMA_VERSION may
        # only move together with src/repro/obs/SCHEMA.md.
        import repro.obs

        schema_md = os.path.join(
            os.path.dirname(repro.obs.__file__), "SCHEMA.md"
        )
        text = open(schema_md, encoding="utf-8").read()
        match = re.search(r"\*\*Span schema version:\*\*\s*(\d+)", text)
        assert match is not None, "SCHEMA.md lost its span version line"
        assert int(match.group(1)) == SPAN_SCHEMA_VERSION


class TestSpanRecorder:
    def test_wall_span_context_manager(self, spans_on):
        with spans_on.wall_span("stream", "session", {"jobs": 3}):
            pass
        (record,) = spans_on.records()
        assert record["clock"] == "wall"
        assert record["name"] == "stream"
        assert record["track"] == "session"
        assert record["attrs"] == {"jobs": 3}
        assert record["dur"] >= 0.0

    def test_sim_spans_are_integers(self, spans_on):
        spans_on.add_sim("busy", "me0", 0, 1_000_000, {"role": "worker"})
        (record,) = spans_on.records()
        assert record == {
            "clock": "sim", "name": "busy", "track": "me0",
            "start": 0, "dur": 1_000_000, "attrs": {"role": "worker"},
        }
        assert type(record["start"]) is int and type(record["dur"]) is int

    def test_env_gate_disables_recording(self, monkeypatch):
        monkeypatch.setenv(OBS_SPANS_ENV_VAR, "off")
        recorder = SpanRecorder()
        assert not spans_enabled()
        with recorder.wall_span("stream", "session"):
            pass
        recorder.add_sim("busy", "me0", 0, 10)
        recorder.add_wall("job", "job", 0.0, 1.0)
        assert recorder.extend([{"clock": "sim", "name": "x", "track": "t",
                                 "start": 0, "dur": 1}]) == 0
        assert len(recorder) == 0

    def test_extend_drops_malformed_and_merges_attrs(self, spans_on):
        absorbed = spans_on.extend(
            [
                {"clock": "sim", "name": "seg", "track": "scenario",
                 "start": 0, "dur": 5, "attrs": {"process": "cbr"}},
                {"clock": "nonsense", "name": "x", "track": "t",
                 "start": 0, "dur": 1},
                "not a span",
                {"clock": "sim", "name": "busy", "track": "me0",
                 "start": True, "dur": 1},
            ],
            attrs={"job": "j1"},
        )
        assert absorbed == 1
        (record,) = spans_on.records()
        assert record["attrs"] == {"process": "cbr", "job": "j1"}

    def test_listener_sees_every_span(self, spans_on):
        seen = []
        spans_on.add_listener(seen.append)
        spans_on.add_sim("busy", "me0", 0, 10)
        spans_on.remove_listener(seen.append)
        spans_on.add_sim("idle", "me0", 10, 10)
        assert [r["name"] for r in seen] == ["busy"]

    def test_jsonl_round_trip(self, spans_on, tmp_path):
        spans_on.add_wall("stream", "session", 1.5, 0.25)
        spans_on.add_sim("busy", "me0", 0, 42)
        path = str(tmp_path / "run.spans.jsonl")
        spans_on.write(path, meta={"command": "test"})
        header, records = read_spans(path)
        assert header["schema"] == SPAN_SCHEMA_TAG
        assert header["version"] == SPAN_SCHEMA_VERSION
        assert header["command"] == "test"
        assert records == spans_on.records()

    def test_disabled_log_is_header_only(self, monkeypatch, tmp_path):
        monkeypatch.setenv(OBS_SPANS_ENV_VAR, "off")
        recorder = SpanRecorder()
        recorder.add_sim("busy", "me0", 0, 42)
        path = str(tmp_path / "off.spans.jsonl")
        recorder.write(path)
        header, records = read_spans(path)
        assert header["version"] == SPAN_SCHEMA_VERSION
        assert records == []

    def test_read_rejects_foreign_files(self, tmp_path):
        wrong_tag = tmp_path / "metrics.jsonl"
        wrong_tag.write_text(
            json.dumps({"schema": "repro.obs.metrics", "version": 2}) + "\n"
        )
        with pytest.raises(ExperimentError, match="not a span log"):
            read_spans(str(wrong_tag))
        wrong_version = tmp_path / "future.spans.jsonl"
        wrong_version.write_text(
            json.dumps({"schema": SPAN_SCHEMA_TAG,
                        "version": SPAN_SCHEMA_VERSION + 1}) + "\n"
        )
        with pytest.raises(ExperimentError, match="schema version"):
            read_spans(str(wrong_version))

    def test_summarize_aggregates_by_lane(self, spans_on):
        spans_on.add_sim("busy", "me0", 0, 2_000_000_000)
        spans_on.add_sim("busy", "me0", 0, 1_000_000_000)
        spans_on.add_wall("job", "job", 0.0, 0.5)
        text = summarize_spans(spans_on.records())
        assert "me0" in text and "job" in text
        assert re.search(r"busy\s+2\b", text)


# ---------------------------------------------------------------------------
# Determinism: sim spans across backends and monitor modes
# ---------------------------------------------------------------------------
class TestSimSpanDeterminism:
    def test_outcomes_carry_sim_spans(self, spans_on):
        outcomes = run_sweep(small_spec().jobs(), workers=1)
        for outcome in outcomes:
            spans = outcome.obs["spans"]
            tracks = {s["track"] for s in spans}
            assert "scenario" not in tracks  # load: traffic, no scenario
            assert any(t.startswith("me") for t in tracks)
            if outcome.check_results:
                assert "checks" in tracks
            # Sim clock only: wall spans never ride outcomes.
            assert all(s["clock"] == "sim" for s in spans)

    def test_process_pool_matches_serial(self, spans_on):
        jobs = small_spec().jobs()
        serial = run_sweep(jobs, workers=1)
        pooled = run_sweep(jobs, workers=2)
        assert sim_spans_of(serial) == sim_spans_of(pooled)

    def test_monitor_mode_does_not_move_spans(self, spans_on, monkeypatch):
        jobs = small_spec().jobs()
        compiled = run_sweep(jobs, workers=1)
        monkeypatch.setenv(MONITOR_MODE_ENV_VAR, "interpreted")
        interpreted = run_sweep(jobs, workers=1)
        assert sim_spans_of(compiled) == sim_spans_of(interpreted)

    def test_scenario_traffic_records_segments(self, spans_on):
        spec = small_spec(traffic=("scenario:flash_crowd",))
        outcomes = run_sweep(spec.jobs(), workers=1)
        spans = outcomes[0].obs["spans"]
        segments = [s for s in spans if s["track"] == "scenario"]
        assert segments and all(s["name"].startswith("segment") for s in segments)
        assert all("load_mbps" in s["attrs"] for s in segments)

    def test_off_switch_removes_span_payload(self, monkeypatch):
        monkeypatch.setenv(OBS_SPANS_ENV_VAR, "off")
        reset_recorder()
        outcomes = run_sweep(small_spec().jobs(), workers=1)
        assert all(
            o.obs is None or "spans" not in o.obs for o in outcomes
        )
        assert len(get_recorder()) == 0
        reset_recorder()

    def test_study_json_identical_with_spans_on_and_off(
        self, spans_on, monkeypatch
    ):
        from repro.api import Session

        spec = StudySpec(
            scenarios=("link_failover",),
            policies=("tdvs",),
            thresholds_mbps=(1200.0,),
            windows_cycles=(40_000,),
            duration_cycles=120_000,
            span=20,
        )
        with_spans = render_json(Session().study(spec).policy_map)
        monkeypatch.setenv(OBS_SPANS_ENV_VAR, "off")
        reset_recorder()
        without = render_json(Session().study(spec).policy_map)
        assert with_spans == without


# ---------------------------------------------------------------------------
# Session orchestration spans + span-log plumbing
# ---------------------------------------------------------------------------
class TestSessionSpans:
    def test_session_records_orchestration_timeline(self, spans_on, tmp_path):
        from repro.api import EventHooks, Session

        seen = []
        session = Session(hooks=EventHooks(on_span=seen.append))
        outcomes = session.sweep(small_spec().jobs())
        records = get_recorder().records()
        tracks = {r["track"] for r in records}
        assert {"session", "backend", "coordinator", "job"} <= tracks
        # Absorbed sim spans are tagged with their job id.
        absorbed = [r for r in records if r["clock"] == "sim"]
        assert absorbed
        assert all(r["attrs"]["job"] for r in absorbed)
        assert {o.job_id for o in outcomes} == {
            r["attrs"]["job"] for r in absorbed
        }
        # The on_span hook saw every record as it landed.
        assert seen == records
        path = str(tmp_path / "run.spans.jsonl")
        session.write_spans(path, meta={"command": "test-sweep"})
        header, read_back = read_spans(path)
        assert header["command"] == "test-sweep"
        assert read_back == records

    def test_forward_latency_histogram_lands_in_snapshot(self, spans_on):
        # Satellite regression: the span-latency gate's unparsed LHS is
        # parenthesized — the histogram must still key off it.
        from repro.api import Session

        session = Session()
        spec = StudySpec(
            scenarios=("link_failover",),
            policies=("tdvs",),
            thresholds_mbps=(1200.0,),
            windows_cycles=(40_000,),
            duration_cycles=120_000,
            span=20,
        )
        session.study(spec)
        records = {r["name"]: r for r in session.metrics.records()}
        histogram = records["latency.forward.link_failover"]
        assert histogram["type"] == "histogram"
        assert histogram["count"] > 0
        assert histogram["sum"] > 0.0


# ---------------------------------------------------------------------------
# Distributed backend (slow lane)
# ---------------------------------------------------------------------------
@pytest.mark.slow
class TestDistributedSpans:
    def test_distributed_sim_spans_match_serial(self, spans_on):
        jobs = small_spec().jobs()
        serial = run_sweep(jobs, workers=1)
        backend = DistributedBackend(port=0)
        worker = threading.Thread(
            target=run_worker, args=(backend.address,),
            kwargs={"log": None}, daemon=True,
        )
        worker.start()
        distributed = run_sweep(jobs, backend=backend)
        worker.join(timeout=30)
        assert sim_spans_of(serial) == sim_spans_of(distributed)

    def test_worker_without_spans_key_still_drains(self, spans_on):
        # Protocol compatibility: a peer that never learned the
        # optional ``spans`` key (or runs with spans off) must behave
        # exactly like a v1 worker.
        import subprocess
        import sys

        jobs = small_spec().jobs()
        serial = run_sweep(jobs, workers=1)
        # The serial reference run above recorded its own
        # ``worker:serial`` lane; start clean so the absence check below
        # sees only the distributed run.
        reset_recorder()
        backend = DistributedBackend(port=0)
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        src = os.path.join(repo_root, "src")
        existing = os.environ.get("PYTHONPATH")
        env = {
            **os.environ,
            "PYTHONPATH": f"{src}{os.pathsep}{existing}" if existing else src,
            OBS_SPANS_ENV_VAR: "off",
        }
        worker = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--connect", backend.address, "--quiet", "--timeout", "60"],
            env=env, cwd=repo_root,
        )
        try:
            distributed = run_sweep(jobs, backend=backend)
        finally:
            worker.wait(timeout=30)
        assert [o.job_id for o in distributed] == [o.job_id for o in serial]
        assert [o.result.totals for o in distributed] == [
            o.result.totals for o in serial
        ]
        # The worker sent no spans, so nothing worker-side was absorbed.
        tracks = {r["track"] for r in get_recorder().records()}
        assert not any(t.startswith("worker:") for t in tracks)


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------
def _timeline_records():
    """A synthetic two-job timeline exercising every exporter feature."""
    return [
        {"clock": "wall", "name": "stream", "track": "session",
         "start": 10.0, "dur": 2.0},
        {"clock": "wall", "name": "grant", "track": "coordinator",
         "start": 10.1, "dur": 0.01, "attrs": {"job": "j1", "worker": "w"}},
        {"clock": "wall", "name": "execute", "track": "worker:w",
         "start": 10.2, "dur": 1.0, "attrs": {"job": "j1"}},
        {"clock": "wall", "name": "job", "track": "job",
         "start": 10.1, "dur": 1.2, "attrs": {"job": "j1", "worker": "w"}},
        {"clock": "sim", "name": "busy", "track": "me0",
         "start": 0, "dur": 4_000_000, "attrs": {"job": "j1"}},
        {"clock": "sim", "name": "segment0", "track": "scenario",
         "start": 0, "dur": 8_000_000, "attrs": {"job": "j1"}},
    ]


class TestPerfettoExport:
    def test_track_type_inventory(self):
        trace = to_perfetto(_timeline_records())
        types = track_types(trace)
        # The acceptance floor: coordinator, worker, job and
        # kernel-phase (me) tracks all present.
        assert {"coordinator", "worker", "job", "me"} <= set(types)
        assert len(types) >= 4

    def test_wall_normalization_and_flow_events(self):
        trace = to_perfetto(_timeline_records())
        events = trace["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        # Earliest wall span starts at ts 0 (µs, normalized).
        assert min(e["ts"] for e in xs) == 0.0
        flows = [e for e in events if e["ph"] in ("s", "f")]
        assert len(flows) == 2
        starts = [e for e in flows if e["ph"] == "s"]
        ends = [e for e in flows if e["ph"] == "f"]
        assert starts[0]["id"] == ends[0]["id"]
        assert ends[0]["bp"] == "e"

    def test_render_is_stable_json(self):
        text = render_perfetto(_timeline_records(), meta={"command": "t"})
        assert text.endswith("\n")
        parsed = json.loads(text)
        assert parsed["otherData"] == {"command": "t"}
        assert render_perfetto(_timeline_records(), meta={"command": "t"}) == text


class TestHtmlReport:
    def _metrics_records(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "latency.forward.flash_crowd", (50.0, 100.0, 200.0)
        )
        histogram.observe(75.0)
        histogram.observe(150.0)
        return [r for r in registry.records() if r["type"] == "histogram"]

    def test_report_sections(self, spans_on):
        from repro.api import Session

        spec = StudySpec(
            scenarios=("link_failover",),
            policies=("tdvs",),
            thresholds_mbps=(1200.0,),
            windows_cycles=(40_000,),
            duration_cycles=120_000,
            span=20,
        )
        study = Session().study(spec)
        page = render_html(
            study.policy_map,
            metrics_records=self._metrics_records(),
            span_records=_timeline_records(),
            title="test report",
        )
        assert page.startswith("<!DOCTYPE html>")
        assert "test report" in page
        assert "link_failover" in page
        assert "Pareto" in page
        # Histogram section keys off the metric name; the page shows
        # the scenario suffix.
        assert "Forward-latency distributions" in page
        assert "flash_crowd" in page
        assert "me0" in page  # the timeline summary rode along
        # Self-contained: no external fetches.
        assert "http://" not in page and "https://" not in page

    def test_report_from_study_dict(self, spans_on):
        # The CLI path: a study JSON loaded back from disk.
        from repro.api import Session

        spec = StudySpec(
            scenarios=("link_failover",),
            policies=("tdvs",),
            thresholds_mbps=(1200.0,),
            windows_cycles=(40_000,),
            duration_cycles=120_000,
            span=20,
        )
        policy_map = Session().study(spec).policy_map
        from_dict = render_html(json.loads(render_json(policy_map)))
        assert "link_failover" in from_dict


# ---------------------------------------------------------------------------
# CLI surfaces
# ---------------------------------------------------------------------------
class TestCliSurfaces:
    def test_trace_export_and_report(self, spans_on, tmp_path, capsys):
        spans_on.extend(_timeline_records())
        log = str(tmp_path / "run.spans.jsonl")
        spans_on.write(log, meta={"command": "test"})
        out = str(tmp_path / "run.perfetto.json")
        assert main(["trace", "export", log, "--format", "perfetto",
                     "--out", out]) == 0
        trace = json.load(open(out))
        assert {"coordinator", "worker", "job", "me"} <= set(
            track_types(trace)
        )
        captured = capsys.readouterr()
        assert "track types" in captured.err  # status goes to stderr
        assert "coordinator" in captured.out  # the timeline summary

    def test_metrics_diff_rejects_version_mismatch(self, tmp_path, capsys):
        current = tmp_path / "current.jsonl"
        registry = MetricsRegistry()
        registry.counter("session.outcomes").inc(1)
        registry.write_snapshot(str(current))
        stale = tmp_path / "stale.jsonl"
        stale.write_text(
            json.dumps({"schema": "repro.obs.metrics",
                        "version": METRICS_SCHEMA_VERSION - 1}) + "\n"
            + json.dumps({"type": "counter", "name": "session.outcomes",
                          "value": 1}) + "\n"
        )
        assert main(["metrics", str(current), "--diff", str(stale)]) == 2
        err = capsys.readouterr().err
        assert "version" in err and "mismatch" in err
