"""Tests for counters and time-weighted statistics."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.sim.stats import (
    Counter,
    IntervalAccumulator,
    RateWindow,
    TimeWeightedValue,
)


class TestCounter:
    def test_add(self):
        counter = Counter("c")
        counter.add()
        counter.add(5)
        assert counter.value == 6

    def test_negative_rejected(self):
        counter = Counter("c")
        with pytest.raises(SimulationError):
            counter.add(-1)


class TestTimeWeightedValue:
    def test_integral_of_constant(self):
        sim = Simulator()
        signal = TimeWeightedValue(sim, initial=2.0)
        sim.run(until_ps=1_000_000)  # 1 us
        assert signal.integral == pytest.approx(2.0 * 1e-6)

    def test_integral_across_level_changes(self):
        sim = Simulator()
        signal = TimeWeightedValue(sim, initial=1.0)
        sim.run(until_ps=1_000_000)
        signal.set(3.0)
        sim.run(until_ps=2_000_000)
        # 1 us at 1.0 + 1 us at 3.0 = 4.0 us-units
        assert signal.integral == pytest.approx(4.0e-6)

    def test_add_adjusts_level(self):
        sim = Simulator()
        signal = TimeWeightedValue(sim, initial=1.0)
        signal.add(0.5)
        assert signal.level == 1.5

    def test_integral_is_idempotent_readout(self):
        sim = Simulator()
        signal = TimeWeightedValue(sim, initial=1.0)
        sim.run(until_ps=500)
        first = signal.integral
        second = signal.integral
        assert first == second


class TestIntervalAccumulator:
    def test_charges_time_to_active_state(self):
        sim = Simulator()
        acc = IntervalAccumulator(sim, "busy")
        sim.run(until_ps=1000)
        acc.set_state("idle")
        sim.run(until_ps=3000)
        totals = acc.totals_ps()
        assert totals["busy"] == 1000
        assert totals["idle"] == 2000

    def test_same_state_transition_is_noop(self):
        sim = Simulator()
        acc = IntervalAccumulator(sim, "busy")
        sim.run(until_ps=100)
        acc.set_state("busy")
        assert acc.state == "busy"
        sim.run(until_ps=200)
        assert acc.totals_ps()["busy"] == 200

    def test_window_fractions(self):
        sim = Simulator()
        acc = IntervalAccumulator(sim, "busy")
        sim.run(until_ps=1000)
        acc.reset_window()
        sim.run(until_ps=1600)
        acc.set_state("idle")
        sim.run(until_ps=2000)
        fractions = acc.window_fractions()
        assert fractions["busy"] == pytest.approx(0.6)
        assert fractions["idle"] == pytest.approx(0.4)

    def test_window_reset_clears_charges(self):
        sim = Simulator()
        acc = IntervalAccumulator(sim, "busy")
        sim.run(until_ps=1000)
        acc.reset_window()
        assert acc.window_ps() == {}

    def test_zero_length_window_fractions_empty(self):
        sim = Simulator()
        acc = IntervalAccumulator(sim, "busy")
        acc.reset_window()
        assert acc.window_fractions() == {}


class TestRateWindow:
    def test_window_rate(self):
        sim = Simulator()
        window = RateWindow(sim)
        window.add(1000.0)  # e.g. bits
        sim.run(until_ps=1_000_000)  # 1 us
        assert window.window_rate_per_s() == pytest.approx(1e9)

    def test_reset_starts_fresh(self):
        sim = Simulator()
        window = RateWindow(sim)
        window.add(500.0)
        sim.run(until_ps=1000)
        window.reset_window()
        assert window.window_volume == 0.0
        assert window.total == 500.0

    def test_zero_span_rate_is_zero(self):
        sim = Simulator()
        window = RateWindow(sim)
        window.add(100.0)
        assert window.window_rate_per_s() == 0.0
