"""Tests for the scenario-conditioned study engine (repro.studies)."""

import json
import math

import pytest

from repro.cli import main
from repro.errors import AnalysisError, ConfigError
from repro.scenarios import get_scenario
from repro.studies import (
    StudyAssertion,
    StudySpec,
    dominates,
    get_objective,
    pareto_front,
    run_study,
    select_design_point,
)
from repro.studies.policymap import CandidateSummary, PolicyMap, _verdict
from repro.studies.report import render_json, render_markdown, render_text

#: Short, deterministic study shape shared by the execution tests.
TINY = dict(
    thresholds_mbps=(1000.0, 1400.0),
    windows_cycles=(40_000,),
    duration_cycles=120_000,
    span=20,
)


def tiny_spec(**overrides) -> StudySpec:
    settings = dict(
        scenarios=("link_failover",), policies=("tdvs", "edvs"), **TINY
    )
    settings.update(overrides)
    return StudySpec(**settings)


class TestSpecExpansion:
    def test_grid_counts(self):
        spec = StudySpec(
            scenarios=("flash_crowd", "link_failover"),
            policies=("tdvs", "edvs"),
            thresholds_mbps=(800.0, 1000.0),
            windows_cycles=(20_000, 40_000),
            seeds=(1, 2),
        )
        # Per scenario: baseline none (1) + tdvs 2x2 + edvs 2, x 2 seeds.
        per_scenario = (1 + 4 + 2) * 2
        assert spec.job_count() == 2 * per_scenario
        by_scenario = spec.jobs_by_scenario()
        assert [name for name, _ in by_scenario] == ["flash_crowd", "link_failover"]
        assert all(len(jobs) == per_scenario for _, jobs in by_scenario)

    def test_empty_scenarios_resolve_to_full_catalog(self):
        spec = StudySpec()
        assert len(spec.resolved_scenarios()) >= 9

    def test_duplicate_scenarios_deduped(self):
        """A repeated name must not run its grid twice for one map row."""
        spec = tiny_spec(scenarios=("link_failover", "link_failover"))
        assert spec.resolved_scenarios() == ("link_failover",)
        assert spec.job_count() == tiny_spec().job_count()

    def test_none_policy_competes_only_when_requested(self):
        spec = tiny_spec(policies=("none", "tdvs"))
        assert spec.competing_policies() == ("none", "tdvs")
        # But the sweep always includes the baseline exactly once.
        sweep = spec.sweep_spec_for("link_failover")
        assert sweep.policies.count("none") == 1

    def test_every_job_carries_the_scenario_checks(self):
        spec = tiny_spec()
        for _, jobs in spec.jobs_by_scenario():
            for job in jobs:
                assert len(job.checks) == 2
                assert "time(forward" in job.checks[0]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            tiny_spec(policies=("magic",)).validate()

    def test_unknown_objective_rejected(self):
        with pytest.raises(ConfigError):
            tiny_spec(objective="fastest").validate()

    def test_unknown_scenario_rejected(self):
        with pytest.raises(Exception):
            tiny_spec(scenarios=("no_such_workload",)).validate()

    def test_empty_policies_rejected(self):
        with pytest.raises(ConfigError):
            tiny_spec(policies=()).validate()


class TestAssertionDerivation:
    def test_latency_bound_scales_with_slack(self):
        spec1 = tiny_spec(latency_slack=1.0)
        spec2 = tiny_spec(latency_slack=3.0)
        scenario = get_scenario("flash_crowd")
        assert spec2.latency_bound_us(scenario) == pytest.approx(
            3.0 * spec1.latency_bound_us(scenario)
        )

    def test_bound_uses_quietest_phase(self):
        """A quieter scenario gets a laxer (larger) latency bound."""
        spec = tiny_spec()
        trough = spec.latency_bound_us(get_scenario("overnight_trough"))
        saturated = spec.latency_bound_us(get_scenario("saturation_stress"))
        assert trough > saturated

    def test_assertion_tolerance(self):
        gate = StudyAssertion("g", "x <= 1", max_violation_fraction=0.1)
        assert gate.holds(100, 10)
        assert not gate.holds(100, 11)
        assert not gate.holds(0, 0), "zero instances prove nothing"
        strict = StudyAssertion("g", "x <= 1")
        assert strict.holds(5, 0) and not strict.holds(5, 1)


def candidate(
    policy="tdvs",
    threshold=1000.0,
    window=40_000,
    power=1.0,
    loss=0.01,
    latency=50.0,
    passed=True,
) -> CandidateSummary:
    return CandidateSummary(
        scenario="synthetic",
        policy=policy,
        threshold_mbps=threshold,
        window_cycles=window,
        seed=7,
        job_id=f"{policy}-{threshold}-{window}-{power}",
        label="synthetic",
        metrics={
            "power_w": power,
            "throughput_mbps": 1000.0,
            "loss_fraction": loss,
            "latency_mean_us": latency,
        },
        gates={"span_latency": passed},
        passed=passed,
    )


class TestObjectiveReduction:
    def test_winner_is_assertion_passing_minimum(self):
        """The globally cheapest config loses when its assertions fail."""
        baseline = candidate(policy="none", threshold=None, window=None, power=1.5)
        cheapest_but_failing = candidate(power=0.7, passed=False)
        cheapest_passing = candidate(power=0.9, window=20_000)
        pool = [cheapest_but_failing, cheapest_passing, candidate(power=1.2)]
        verdict = _verdict("synthetic", get_objective("min_energy"), baseline, pool)
        assert verdict.winner is cheapest_passing
        assert verdict.fallback is None
        assert verdict.power_saving_fraction == pytest.approx(1 - 0.9 / 1.5)

    def test_fallback_when_nothing_passes(self):
        baseline = candidate(policy="none", threshold=None, window=None, power=1.5)
        pool = [candidate(power=1.2, passed=False), candidate(power=0.8, passed=False)]
        verdict = _verdict("synthetic", get_objective("min_energy"), baseline, pool)
        assert verdict.winner is None
        assert verdict.fallback is pool[1]
        assert verdict.power_saving_fraction is None

    def test_objective_direction_respected(self):
        baseline = candidate(policy="none", threshold=None, window=None)
        slow = candidate(power=0.8)
        fast = candidate(power=1.2, window=20_000)
        fast.metrics["throughput_mbps"] = 1400.0
        verdict = _verdict(
            "synthetic", get_objective("max_throughput"), baseline, [slow, fast]
        )
        assert verdict.winner is fast

    def test_nan_metric_always_loses(self):
        baseline = candidate(policy="none", threshold=None, window=None)
        nan_latency = candidate(latency=math.nan)
        finite = candidate(latency=80.0, window=20_000)
        verdict = _verdict(
            "synthetic", get_objective("min_latency"), baseline, [nan_latency, finite]
        )
        assert verdict.winner is finite

    def test_tie_keeps_job_order(self):
        baseline = candidate(policy="none", threshold=None, window=None)
        first = candidate(power=1.0)
        second = candidate(power=1.0, window=20_000)
        verdict = _verdict(
            "synthetic", get_objective("min_energy"), baseline, [first, second]
        )
        assert verdict.winner is first

    def test_empty_pool_rejected(self):
        with pytest.raises(AnalysisError):
            _verdict(
                "synthetic",
                get_objective("min_energy"),
                candidate(policy="none", threshold=None, window=None),
                [],
            )


class TestSelectDesignPoint:
    def test_min_max_and_ties(self):
        cells = [(("a"), 2.0), (("b"), 1.0), (("c"), 1.0)]
        assert select_design_point(cells, "min") == ("b", 1.0)
        assert select_design_point(cells, "max") == ("a", 2.0)

    def test_errors(self):
        with pytest.raises(ConfigError):
            select_design_point([], "min")
        with pytest.raises(ConfigError):
            select_design_point([("a", 1.0)], "sideways")

    def test_surfaces_consult_the_same_reduction(self):
        """fig08/fig09 read-offs go through select_design_point."""
        from repro.analysis.surface import PercentileSurface
        from repro.experiments.fig08_power_surface import surface_optimum
        from repro.loc.analyzer import DistributionAnalyzer
        from repro.loc.builtin import power_distribution_formula

        surface = PercentileSurface((1.0, 2.0), (10.0, 20.0))
        for k, (row, col) in enumerate(
            [(r, c) for r in (1.0, 2.0) for c in (10.0, 20.0)]
        ):
            analyzer = DistributionAnalyzer(
                power_distribution_formula(span=1, low=0.5, high=2.25, step=0.25)
            )
            analyzer.observe(0.6 + 0.25 * k)
            surface.add(row, col, analyzer.finish())
        assert surface_optimum(surface, "min") == surface.argmin()
        assert surface_optimum(surface, "max") == surface.argmax()

    def test_surface_optimum_tolerates_missing_cells(self):
        """Like argmin/argmax, only populated cells are considered."""
        from repro.analysis.surface import PercentileSurface
        from repro.experiments.fig08_power_surface import surface_optimum
        from repro.loc.analyzer import DistributionAnalyzer
        from repro.loc.builtin import power_distribution_formula

        surface = PercentileSurface((1.0, 2.0), (10.0, 20.0))
        analyzer = DistributionAnalyzer(
            power_distribution_formula(span=1, low=0.5, high=2.25, step=0.25)
        )
        analyzer.observe(1.0)
        surface.add(2.0, 20.0, analyzer.finish())
        assert surface_optimum(surface, "min") == surface.argmin()


class TestPareto:
    def test_front_is_non_dominated(self):
        points = [
            (1.0, 0.1, 50.0),   # cheap, lossy-ish
            (1.2, 0.05, 45.0),  # middle
            (1.5, 0.01, 40.0),  # expensive, clean
            (1.6, 0.02, 41.0),  # dominated by the previous point
            (1.2, 0.05, 46.0),  # dominated by the second point
        ]
        front = pareto_front(points)
        assert front == [0, 1, 2]
        for i in front:
            assert not any(dominates(points[j], points[i]) for j in front if j != i)

    def test_duplicates_all_survive(self):
        points = [(1.0, 1.0), (1.0, 1.0)]
        assert pareto_front(points) == [0, 1]

    def test_nan_axis_never_dominates(self):
        clean = (1.0, 1.0)
        nanpt = (0.5, math.nan)
        assert not dominates(nanpt, clean)
        assert dominates((0.5, 1.0), (0.5, math.nan))
        assert pareto_front([clean, nanpt]) == [0, 1]  # incomparable: both stay

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(AnalysisError):
            dominates((1.0,), (1.0, 2.0))


class TestRunStudy:
    def test_map_covers_every_scenario_and_gates_winners(self):
        spec = tiny_spec(scenarios=("link_failover", "overnight_trough"))
        result = run_study(spec, workers=1)
        policy_map = result.policy_map
        assert len(policy_map) == 2
        assert set(policy_map.entries) == {"link_failover", "overnight_trough"}
        for verdict in policy_map:
            assert verdict.baseline.policy == "none"
            # Competing pool excludes the implicit baseline.
            assert all(c.policy != "none" for c in verdict.candidates)
            assert verdict.pareto, "front is never empty"
            if verdict.winner is not None:
                assert verdict.winner.passed
                assert all(verdict.winner.gates.values())
            else:
                assert verdict.fallback is not None

    @pytest.mark.slow
    def test_serial_and_parallel_maps_identical(self):
        spec = tiny_spec(scenarios=("link_failover", "saturation_stress"))
        serial = run_study(spec, workers=1)
        parallel = run_study(spec, workers=2)
        assert json.dumps(serial.policy_map.to_dict(), sort_keys=True) == json.dumps(
            parallel.policy_map.to_dict(), sort_keys=True
        )

    def test_store_makes_studies_resumable(self, tmp_path):
        from repro.sweep import ResultStore

        path = str(tmp_path / "study.jsonl")
        spec = tiny_spec()
        first = run_study(spec, workers=1, store=ResultStore(path))
        assert first.cached_jobs == 0
        second = run_study(spec, workers=1, store=ResultStore(path))
        assert second.cached_jobs == second.total_jobs == first.total_jobs

        def normalized(result):
            # The cached provenance flag is the one legitimate difference.
            data = json.loads(json.dumps(result.policy_map.to_dict()))
            for scenario in data["scenarios"]:
                for value in scenario.values():
                    for entry in value if isinstance(value, list) else [value]:
                        if isinstance(entry, dict):
                            entry.pop("cached", None)
            return json.dumps(data, sort_keys=True)

        assert normalized(first) == normalized(second)

    def test_mismatched_outcomes_rejected(self):
        """PolicyMap.build refuses outcomes missing the study's checks."""
        from repro.sweep import SweepSpec, run_sweep

        spec = tiny_spec()
        (job,) = SweepSpec(
            policies=("none",),
            traffic=("scenario:link_failover",),
            duration_cycles=120_000,
            span=20,
        ).jobs()
        (outcome,) = run_sweep([job], workers=1)
        with pytest.raises(AnalysisError):
            PolicyMap.build(spec, [("link_failover", [outcome])])


class TestReports:
    @pytest.fixture(scope="class")
    def study(self):
        return run_study(tiny_spec(), workers=1)

    def test_text_report_lists_scenarios(self, study):
        text = render_text(study.policy_map)
        assert "link_failover" in text
        assert "LOC-assertion gated" in text

    def test_markdown_report_has_map_and_fronts(self, study):
        markdown = render_markdown(study.policy_map)
        assert markdown.startswith("# Scenario-conditioned DVS policy study")
        assert "| scenario |" in markdown
        assert "Pareto front" in markdown

    def test_json_report_round_trips(self, study):
        data = json.loads(render_json(study.policy_map))
        assert data["objective"] == "min_energy"
        assert [s["scenario"] for s in data["scenarios"]] == ["link_failover"]


class TestCli:
    def test_study_smoke(self, capsys, tmp_path):
        store = str(tmp_path / "study.jsonl")
        argv = [
            "study", "--scenario", "link_failover", "--policy", "tdvs,edvs",
            "--threshold", "1200", "--window", "40000",
            "--profile", "bench", "--workers", "1", "--store", store,
            "--quiet",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "link_failover" in out
        assert "optimal DVS policy map" in out
        # Second invocation is served from the store cache.
        assert main(argv) == 0
        assert "link_failover" in capsys.readouterr().out

    def test_study_json_to_file(self, capsys, tmp_path):
        out_path = tmp_path / "map.json"
        assert main([
            "study", "--scenario", "overnight_trough", "--policy", "edvs",
            "--window", "40000", "--profile", "bench", "--workers", "1",
            "--json", "--quiet", "--out", str(out_path),
        ]) == 0
        data = json.loads(out_path.read_text())
        assert [s["scenario"] for s in data["scenarios"]] == ["overnight_trough"]

    def test_study_unknown_objective_raises(self):
        with pytest.raises(ConfigError):
            main([
                "study", "--scenario", "overnight_trough",
                "--objective", "fastest", "--quiet",
            ])
