"""Tests for the sweep engine: specs, jobs, parallel execution, caching."""

import json

import pytest

from repro.config import DvsConfig, RunConfig, TrafficConfig
from repro.errors import ConfigError, ExperimentError
from repro.sweep import (
    Job,
    ResultStore,
    SweepSpec,
    config_hash,
    parse_traffic_token,
    run_job,
    run_sweep,
    summarize,
)

#: Short, deterministic run shape shared by the execution tests.
FAST = dict(duration_cycles=120_000, process="cbr", seeds=(11,))


def small_spec(**overrides) -> SweepSpec:
    settings = dict(
        policies=("none", "tdvs"),
        thresholds_mbps=(1200.0,),
        windows_cycles=(40_000,),
        traffic=("load:1000",),
        span=20,
        **FAST,
    )
    settings.update(overrides)
    return SweepSpec(**settings)


class TestSpecExpansion:
    def test_grid_size(self):
        spec = SweepSpec(
            policies=("tdvs",),
            thresholds_mbps=(800.0, 1000.0),
            windows_cycles=(20_000, 40_000),
            traffic=("level:high", "load:500"),
            seeds=(1, 2),
        )
        assert len(spec.jobs()) == 2 * 2 * 2 * 2

    def test_policy_axes(self):
        spec = SweepSpec(
            policies=("none", "edvs", "tdvs"),
            thresholds_mbps=(800.0, 1000.0),
            windows_cycles=(20_000, 40_000),
        )
        # none: 1, edvs: 2 windows, tdvs: 2x2.
        assert len(spec.jobs()) == 1 + 2 + 4

    def test_duplicate_points_deduped(self):
        spec = SweepSpec(policies=("none", "none"))
        assert len(spec.jobs()) == 1

    def test_scenario_axis(self):
        spec = SweepSpec(traffic=("scenario:flash_crowd",))
        (job,) = spec.jobs()
        assert job.run_config().traffic.scenario == "flash_crowd"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            SweepSpec(policies=("magic",)).jobs()

    def test_base_overrides_merge(self):
        spec = SweepSpec(base={"benchmark": "nat"})
        (job,) = spec.jobs()
        assert job.run_config().benchmark == "nat"

    def test_job_build_validates(self):
        with pytest.raises(ConfigError):
            Job.build({"benchmark": "bogus"})

    @pytest.mark.parametrize("axis", ["benchmarks", "policies", "traffic", "seeds"])
    def test_empty_axis_rejected_with_field_named(self, axis):
        """An empty axis must fail loudly, not expand to zero jobs."""
        spec = SweepSpec(**{axis: ()})
        with pytest.raises(ConfigError) as excinfo:
            spec.jobs()
        assert axis in str(excinfo.value)

    def test_empty_threshold_and_window_axes_use_defaults(self):
        """Only the outer axes are mandatory; DVS axes have defaults."""
        spec = SweepSpec(
            policies=("tdvs",), thresholds_mbps=(), windows_cycles=()
        )
        assert len(spec.jobs()) == 1

    def test_checks_flow_into_jobs_and_identity(self):
        check = "total_pkt(forward[i+1]) - total_pkt(forward[i]) == 1"
        plain = SweepSpec(policies=("none",)).jobs()[0]
        checked = SweepSpec(policies=("none",), checks=(check,)).jobs()[0]
        assert checked.checks == (check,)
        assert checked.job_id != plain.job_id

    def test_malformed_check_rejected_at_build_time(self):
        from repro.errors import LocError

        with pytest.raises(LocError):
            Job.build(RunConfig(), checks=("not a formula @@",))

    def test_distribution_formula_rejected_as_check(self):
        from repro.errors import LocError

        with pytest.raises(LocError):
            Job.build(RunConfig(), checks=("time(forward[i]) below <0, 5, 1>",))


class TestTrafficTokens:
    def test_level_token(self):
        config = parse_traffic_token("level:med")
        assert config.level == "med" and config.offered_load_mbps is None

    def test_load_token(self):
        assert parse_traffic_token("load:750").offered_load_mbps == 750.0

    def test_scenario_token(self):
        assert parse_traffic_token("scenario:ddos_min64").scenario == "ddos_min64"

    @pytest.mark.parametrize("token", ["high", "level:", "load:abc", "rate:5"])
    def test_bad_tokens_rejected(self, token):
        with pytest.raises(ConfigError):
            parse_traffic_token(token)


class TestConfigHash:
    def test_key_order_independent(self):
        config = RunConfig().to_dict()
        shuffled = dict(reversed(list(config.items())))
        assert config_hash(config) == config_hash(shuffled)

    def test_span_changes_identity(self):
        config = RunConfig().to_dict()
        assert config_hash(config, 20) != config_hash(config, 100)

    def test_config_changes_identity(self):
        a = RunConfig(seed=1).to_dict()
        b = RunConfig(seed=2).to_dict()
        assert config_hash(a) != config_hash(b)


class TestExecution:
    def test_parallel_identical_to_serial(self):
        """The acceptance property: worker count never changes results."""
        jobs = small_spec().jobs()
        serial = run_sweep(jobs, workers=1)
        parallel = run_sweep(jobs, workers=2)
        assert len(serial) == len(parallel) == len(jobs)
        for s, p in zip(serial, parallel):
            assert s.job_id == p.job_id
            assert s.result.totals == p.result.totals
            assert s.result.governor_transitions == p.result.governor_transitions
            assert s.power_dist.counts == p.power_dist.counts
            assert s.throughput_dist.counts == p.throughput_dist.counts

    def test_outcomes_follow_job_order(self):
        jobs = small_spec().jobs()
        outcomes = run_sweep(jobs, workers=2)
        assert [o.job_id for o in outcomes] == [j.job_id for j in jobs]

    def test_run_job_without_span_skips_distributions(self):
        (job,) = SweepSpec(policies=("none",), span=None, **FAST).jobs()
        outcome = run_job(job)
        assert outcome.power_dist is None
        assert outcome.throughput_dist is None
        assert outcome.mean_power_w > 0

    def test_run_job_evaluates_attached_checks(self):
        passing = "total_pkt(forward[i+1]) - total_pkt(forward[i]) == 1"
        failing = "time(forward[i+1]) - time(forward[i]) <= 0"
        (job,) = SweepSpec(
            policies=("none",), span=None, checks=(passing, failing), **FAST
        ).jobs()
        outcome = run_job(job)
        assert len(outcome.check_results) == 2
        ok, bad = outcome.check_results
        assert ok.passed and ok.instances_checked > 0
        assert not bad.passed and bad.violations_total > 0
        assert not outcome.assertions_passed

    def test_check_results_survive_the_store(self, tmp_path):
        check = "total_pkt(forward[i+1]) - total_pkt(forward[i]) == 1"
        (job,) = SweepSpec(policies=("none",), checks=(check,), **FAST).jobs()
        store = ResultStore(str(tmp_path / "r.jsonl"))
        (fresh,) = run_sweep([job], workers=1, store=store)
        (cached,) = run_sweep(
            [job], workers=1, store=ResultStore(str(tmp_path / "r.jsonl"))
        )
        assert cached.cached
        assert [c.to_dict() for c in cached.check_results] == [
            c.to_dict() for c in fresh.check_results
        ]

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ExperimentError):
            run_sweep([], workers=0)

    def test_duplicate_job_ids_execute_once(self, tmp_path):
        """A job list with repeats runs each unique job once and fans
        the outcome out to every index (the regression: repeats used to
        execute — and store — twice)."""
        path = str(tmp_path / "results.jsonl")
        a, b = small_spec().jobs()
        outcomes = run_sweep([a, b, a], workers=1, store=ResultStore(path))
        assert [o.job_id for o in outcomes] == [a.job_id, b.job_id, a.job_id]
        assert outcomes[0] is outcomes[2]  # one execution, shared outcome
        records = [json.loads(line) for line in open(path)]
        assert sorted(r["job_id"] for r in records) == sorted(
            [a.job_id, b.job_id]
        )

    def test_duplicate_job_ids_parallel(self):
        a, b = small_spec().jobs()
        serial = run_sweep([a, b, a], workers=1)
        parallel = run_sweep([a, b, a], workers=2)
        assert [o.job_id for o in serial] == [o.job_id for o in parallel]
        for s, p in zip(serial, parallel):
            assert s.result.totals == p.result.totals

    def test_duplicate_cached_jobs_fan_out(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        a, b = small_spec().jobs()
        run_sweep([a, b], workers=1, store=ResultStore(path))
        seen = []
        outcomes = run_sweep(
            [a, a, b],
            workers=1,
            store=ResultStore(path),
            progress=lambda done, total, o: seen.append((done, total, o.cached)),
        )
        assert [o.cached for o in outcomes] == [True, True, True]
        assert seen == [(1, 3, True), (2, 3, True), (3, 3, True)]

    def test_progress_callback_sees_every_job(self):
        jobs = small_spec().jobs()
        seen = []
        run_sweep(jobs, workers=1, progress=lambda done, total, o: seen.append((done, total)))
        assert seen == [(1, len(jobs)), (2, len(jobs))]

    def test_summarize_renders_all_rows(self):
        jobs = small_spec().jobs()
        outcomes = run_sweep(jobs, workers=1)
        text = summarize(outcomes)
        assert "power(W)" in text
        assert len(text.splitlines()) == 2 + len(jobs)


class TestResultStore:
    def test_cache_hit_skips_completed_jobs(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        jobs = small_spec().jobs()
        executed = []
        first = run_sweep(
            jobs,
            workers=1,
            store=ResultStore(path),
            progress=lambda d, t, o: executed.append(o.cached),
        )
        assert executed == [False, False]

        # A fresh store over the same file: everything is a cache hit.
        executed.clear()
        second = run_sweep(
            jobs,
            workers=1,
            store=ResultStore(path),
            progress=lambda d, t, o: executed.append(o.cached),
        )
        assert executed == [True, True]
        for a, b in zip(first, second):
            assert a.result.totals == b.result.totals
            assert a.power_dist.counts == b.power_dist.counts
            assert a.result.config == b.result.config

    def test_partial_store_runs_only_missing(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        jobs = small_spec().jobs()
        run_sweep(jobs[:1], workers=1, store=ResultStore(path))
        store = ResultStore(path)
        assert len(store) == 1
        cached_flags = [o.cached for o in run_sweep(jobs, workers=1, store=store)]
        assert cached_flags == [True, False]
        assert len(store) == 2

    def test_store_file_is_jsonl(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        jobs = small_spec(policies=("none",)).jobs()
        run_sweep(jobs, workers=1, store=ResultStore(path))
        lines = [json.loads(line) for line in open(path)]
        assert len(lines) == 1
        assert lines[0]["job_id"] == jobs[0].job_id
        assert lines[0]["result"]["config"]["seed"] == 11

    def test_memory_store_caches_within_process(self):
        store = ResultStore(None)
        jobs = small_spec(policies=("none",)).jobs()
        run_sweep(jobs, workers=1, store=store)
        again = run_sweep(jobs, workers=1, store=store)
        assert [o.cached for o in again] == [True]

    def test_interior_corruption_rejected(self, tmp_path):
        """Bad JSON *before* the final line is real corruption."""
        path = tmp_path / "bad.jsonl"
        good = json.dumps({"job_id": "aa", "result": {}})
        path.write_text(f"not json\n{good}\n")
        with pytest.raises(ExperimentError) as excinfo:
            ResultStore(str(path))
        assert ":1:" in str(excinfo.value)

    def test_truncated_final_line_recovered(self, tmp_path):
        """A crash mid-add leaves a torn last line; the cache survives."""
        path = str(tmp_path / "results.jsonl")
        jobs = small_spec().jobs()
        run_sweep(jobs, workers=1, store=ResultStore(path))
        first, second = open(path, "r", encoding="utf-8").read().splitlines(True)
        open(path, "w", encoding="utf-8").write(first + second[: len(second) // 2])

        store = ResultStore(path)  # first record intact, tail dropped
        assert len(store) == 1
        assert store.get(jobs[0].job_id) is not None
        assert store.get(jobs[1].job_id) is None

    def test_recovery_truncates_and_appends_cleanly(self, tmp_path):
        """After recovery the torn bytes are gone, so re-running the
        missing job appends a well-formed line (the regression: the
        old append would glue JSON onto the torn tail)."""
        path = str(tmp_path / "results.jsonl")
        jobs = small_spec().jobs()
        run_sweep(jobs, workers=1, store=ResultStore(path))
        first, second = open(path, "r", encoding="utf-8").read().splitlines(True)
        open(path, "w", encoding="utf-8").write(first + second[: len(second) // 2])

        flags = [o.cached for o in run_sweep(jobs, workers=1, store=ResultStore(path))]
        assert flags == [True, False]
        records = [json.loads(line) for line in open(path)]
        assert sorted(r["job_id"] for r in records) == sorted(j.job_id for j in jobs)
        assert all(o.cached for o in run_sweep(jobs, workers=1, store=ResultStore(path)))

    def test_final_line_without_job_id_recovered(self, tmp_path):
        """A tail that parses as JSON but is not a record also drops."""
        path = str(tmp_path / "results.jsonl")
        jobs = small_spec(policies=("none",)).jobs()
        run_sweep(jobs, workers=1, store=ResultStore(path))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"half": true}')
        store = ResultStore(path)
        assert len(store) == 1

    def test_empty_and_blank_stores_load(self, tmp_path):
        path = tmp_path / "blank.jsonl"
        path.write_text("\n\n")
        assert len(ResultStore(str(path))) == 0

    def test_outcome_round_trip_preserves_scenario_runs(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        job = Job.build(
            RunConfig(
                duration_cycles=120_000,
                seed=3,
                traffic=TrafficConfig.for_scenario("link_failover"),
                dvs=DvsConfig(policy="edvs"),
            ),
            span=20,
            label="scenario run",
        )
        outcome = run_job(job)
        store = ResultStore(path)
        store.add(outcome)
        rebuilt = ResultStore(path).get(job.job_id)
        assert rebuilt is not None and rebuilt.cached
        assert rebuilt.result.totals == outcome.result.totals
        assert rebuilt.result.config == outcome.result.config
        assert rebuilt.power_dist == outcome.power_dist
        assert (
            [me.freq_changes for me in rebuilt.result.totals.me_summaries]
            == [me.freq_changes for me in outcome.result.totals.me_summaries]
        )


class TestCustomScenarioJobs:
    def test_job_embeds_scenario_definition(self):
        """Jobs referencing scenarios are self-contained for workers."""
        from repro.scenarios import Scenario, ScenarioSegment, register_scenario
        from repro.scenarios.catalog import _CATALOG

        custom = Scenario(
            name="custom_sweep_test",
            title="Custom",
            description="registered only in this process",
            segments=(
                ScenarioSegment(weight=1.0, offered_load_mbps=300.0, process="cbr"),
            ),
        )
        register_scenario(custom, replace=True)
        try:
            job = Job.build(
                RunConfig(
                    duration_cycles=120_000,
                    traffic=TrafficConfig.for_scenario("custom_sweep_test"),
                )
            )
            assert job.scenario == custom.to_dict()
            # Simulate a fresh worker process: the catalog entry is gone,
            # but the embedded definition re-registers it.
            del _CATALOG["custom_sweep_test"]
            outcome = run_job(job)
            assert outcome.result.totals.forwarded_packets > 0
        finally:
            _CATALOG.pop("custom_sweep_test", None)

    def test_scenario_definition_changes_job_identity(self):
        from repro.scenarios import Scenario, ScenarioSegment, register_scenario
        from repro.scenarios.catalog import _CATALOG

        config = RunConfig(traffic=TrafficConfig.for_scenario("redefined"))
        try:
            ids = []
            for load in (200.0, 400.0):
                register_scenario(
                    Scenario(
                        name="redefined",
                        title="v",
                        description="v",
                        segments=(
                            ScenarioSegment(
                                weight=1.0, offered_load_mbps=load, process="cbr"
                            ),
                        ),
                    ),
                    replace=True,
                )
                ids.append(Job.build(config).job_id)
            assert ids[0] != ids[1]
        finally:
            _CATALOG.pop("redefined", None)


class TestExperimentIntegration:
    def test_design_space_parallel_matches_serial(self):
        """tdvs_design_space goes through the engine; workers don't matter."""
        from repro.experiments.common import clear_caches, tdvs_design_space

        clear_caches()
        serial = tdvs_design_space("bench", workers=1)
        clear_caches()
        parallel = tdvs_design_space("bench", workers=2)
        assert serial.keys() == parallel.keys()
        for key in serial:
            assert serial[key].result.totals == parallel[key].result.totals
            assert serial[key].power.counts == parallel[key].power.counts
        clear_caches()
