"""Tests for trace events, buffers, writers and readers."""

import io

import pytest

from repro.errors import TraceError
from repro.trace.buffer import MultiSink, NullSink, TraceBuffer
from repro.trace.events import (
    EVENT_TYPES,
    TraceEvent,
    parse_event_name,
    prefixed_event_name,
)
from repro.trace.reader import read_csv_trace, read_text_trace
from repro.trace.writer import (
    CsvTraceWriter,
    TextTraceWriter,
    format_trace_snapshot,
)

from conftest import forward_series, make_event


class TestEventNames:
    def test_prefixing(self):
        assert prefixed_event_name("pipeline", 2) == "m2_pipeline"
        assert prefixed_event_name("forward") == "forward"

    def test_parse_round_trip(self):
        for base in EVENT_TYPES:
            for me in (None, 0, 5, 12):
                name = prefixed_event_name(base, me)
                assert parse_event_name(name) == (base, me)

    def test_paper_space_dialect(self):
        assert parse_event_name("m2 pipeline") == ("pipeline", 2)

    def test_malformed_names_rejected(self):
        for bad in ("warp", "m_pipeline", "mx_pipeline", "m2_warp", "2_pipeline"):
            with pytest.raises(TraceError):
                parse_event_name(bad)

    def test_unknown_base_rejected_on_prefixing(self):
        with pytest.raises(TraceError):
            prefixed_event_name("warp", 1)
        with pytest.raises(TraceError):
            prefixed_event_name("pipeline", -1)


class TestTraceEvent:
    def test_annotation_lookup(self):
        event = make_event("forward", cycle=7, time=1.5, energy=2.5,
                           total_pkt=3, total_bit=400)
        assert event.annotation("cycle") == 7
        assert event.annotation("time") == 1.5
        assert event.annotation("energy") == 2.5
        assert event.annotation("total_pkt") == 3
        assert event.annotation("total_bit") == 400

    def test_unknown_annotation_rejected(self):
        with pytest.raises(TraceError):
            make_event().annotation("watts")

    def test_base_type_and_me_index(self):
        event = make_event("m3_fifo")
        assert event.base_type == "fifo"
        assert event.me_index == 3

    def test_equality_and_hash(self):
        a = make_event("forward", cycle=1)
        b = make_event("forward", cycle=1)
        c = make_event("forward", cycle=2)
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestTraceBuffer:
    def test_name_filter(self):
        buffer = TraceBuffer(names=("forward",))
        buffer.emit(make_event("forward"))
        buffer.emit(make_event("fifo"))
        assert len(buffer) == 1

    def test_predicate_filter(self):
        buffer = TraceBuffer(predicate=lambda e: e.cycle > 10)
        buffer.emit(make_event(cycle=5))
        buffer.emit(make_event(cycle=15))
        assert len(buffer) == 1

    def test_ring_bound_and_drop_count(self):
        buffer = TraceBuffer(max_events=3)
        for event in forward_series(5):
            buffer.emit(event)
        assert len(buffer) == 3
        assert buffer.dropped == 2
        assert buffer.total_emitted == 5
        # Oldest evicted: remaining events are the last three.
        assert [e.total_pkt for e in buffer.events] == [2, 3, 4]

    def test_multisink_fans_out(self):
        a, b = TraceBuffer(), TraceBuffer()
        sink = MultiSink([a])
        sink.add(b)
        sink.emit(make_event())
        assert len(a) == 1 and len(b) == 1

    def test_null_sink(self):
        NullSink().emit(make_event())  # no exception, nothing stored


class TestWritersAndReaders:
    def test_text_round_trip(self):
        events = [*forward_series(5), make_event("m2_pipeline", cycle=99)]
        buffer = io.StringIO()
        writer = TextTraceWriter(buffer)
        for event in events:
            writer.emit(event)
        buffer.seek(0)
        back = list(read_text_trace(buffer))
        assert [e.name for e in back] == [e.name for e in events]
        assert [e.cycle for e in back] == [e.cycle for e in events]

    def test_csv_round_trip_exact(self):
        events = forward_series(5, dt_us=0.123456, de_uj=0.000789)
        buffer = io.StringIO()
        writer = CsvTraceWriter(buffer)
        for event in events:
            writer.emit(event)
        buffer.seek(0)
        back = list(read_csv_trace(buffer))
        assert back == events  # repr-based floats round-trip exactly

    def test_text_reader_skips_header_comments_blanks(self):
        text = (
            "cycle time(us) energy total_pkt total_bit event\n"
            "# a comment\n"
            "\n"
            "10 1.000 0.5 1 100 forward\n"
        )
        events = list(read_text_trace(io.StringIO(text)))
        assert len(events) == 1
        assert events[0].cycle == 10

    def test_text_reader_space_event_names(self):
        text = "10 1.0 0.5 1 100 m2 pipeline\n"
        events = list(read_text_trace(io.StringIO(text)))
        assert events[0].name == "m2_pipeline"

    def test_text_reader_malformed_rejected(self):
        with pytest.raises(TraceError):
            list(read_text_trace(io.StringIO("1 2 3\n")))
        with pytest.raises(TraceError):
            list(read_text_trace(io.StringIO("x 1.0 0.5 1 100 forward\n")))

    def test_csv_reader_malformed_rejected(self):
        with pytest.raises(TraceError):
            list(read_csv_trace(io.StringIO("forward,1,2\n")))

    def test_file_writers(self, tmp_path):
        path = str(tmp_path / "trace.txt")
        with TextTraceWriter.open(path) as writer:
            for event in forward_series(3):
                writer.emit(event)
        assert writer.events_written == 3
        events = list(read_text_trace(path))
        assert len(events) == 3

    def test_snapshot_format(self):
        snapshot = format_trace_snapshot(forward_series(3), limit=2)
        lines = snapshot.strip().splitlines()
        assert lines[0].startswith("cycle")
        assert len(lines) == 3  # header + 2 events
