"""Tests for the TraceBus observation spine.

Covers the pub/sub contract (tuple handlers, wildcard sinks, dispatch
order, interning), the no-op emitter optimization the chip relies on,
the seal semantics (subscribe-before-start), the settle probe that
keeps observed runs bit-identical, and the end-to-end chip wiring
(ports publish ``fifo``, chip publishes ``forward``, MEs publish
``m<k>_pipeline``, memqueues publish named-only ``mem_*`` channels).
"""

import pytest

from repro.config import RunConfig, TrafficConfig
from repro.errors import TraceError
from repro.runner import SimulationRun, run_simulation
from repro.trace.annotations import AnnotationProvider
from repro.trace.buffer import TraceBuffer
from repro.trace.bus import NOOP_EMITTER, TraceBus
from repro.trace.events import TraceEvent


class _StubAnnotations:
    """Annotation provider stand-in with a deterministic counter."""

    def __init__(self):
        self.snapshots = 0
        self.settles = 0

    def snapshot(self):
        self.snapshots += 1
        return (self.snapshots, float(self.snapshots), 0.0, 1, 64)

    def settle(self):
        self.settles += 1


def quick_config(**overrides) -> RunConfig:
    defaults = dict(
        benchmark="ipfwdr",
        duration_cycles=40_000,
        seed=3,
        traffic=TrafficConfig(offered_load_mbps=800.0),
    )
    defaults.update(overrides)
    return RunConfig(**defaults)


class TestTraceBus:
    def test_unsubscribed_name_binds_noop(self):
        bus = TraceBus(_StubAnnotations())
        assert bus.emitter("forward") is NOOP_EMITTER

    def test_noop_emitter_materializes_nothing(self):
        annotations = _StubAnnotations()
        bus = TraceBus(annotations)
        emit = bus.emitter("forward")
        for _ in range(10):
            emit()
        assert annotations.snapshots == 0
        assert bus.events_published == 0

    def test_tuple_handler_receives_rows_without_events(self):
        annotations = _StubAnnotations()
        bus = TraceBus(annotations)
        rows = []
        bus.subscribe("forward", rows.append)
        emit = bus.emitter("forward")
        emit()
        emit()
        assert rows == [(1, 1.0, 0.0, 1, 64), (2, 2.0, 0.0, 1, 64)]
        assert bus.events_published == 2

    def test_wildcard_sink_sees_every_name(self):
        bus = TraceBus(_StubAnnotations())
        buffer = TraceBuffer()
        bus.attach_sink(buffer)
        bus.emitter("forward")()
        bus.emitter("fifo")()
        assert [e.name for e in buffer.events] == ["forward", "fifo"]

    def test_dispatch_order_handlers_then_sinks_single_snapshot(self):
        annotations = _StubAnnotations()
        bus = TraceBus(annotations)
        order = []
        bus.subscribe("forward", lambda row: order.append(("h1", row)))
        bus.subscribe("forward", lambda row: order.append(("h2", row)))

        class Sink:
            def emit(self, event):
                order.append(("sink", event.as_tuple()[1:]))

        bus.attach_sink(Sink())
        bus.emitter("forward")()
        labels = [label for label, _ in order]
        assert labels == ["h1", "h2", "sink"]
        # One snapshot per event: every subscriber saw the same row.
        assert annotations.snapshots == 1
        assert len({row for _, row in order}) == 1

    def test_subscribe_after_binding_raises(self):
        bus = TraceBus(_StubAnnotations())
        bus.emitter("forward")
        assert bus.sealed
        with pytest.raises(TraceError):
            bus.subscribe("forward", lambda row: None)
        with pytest.raises(TraceError):
            bus.attach_sink(TraceBuffer())

    def test_sink_without_emit_rejected(self):
        bus = TraceBus(_StubAnnotations())
        with pytest.raises(TraceError):
            bus.attach_sink(object())

    def test_settle_probe_for_unsubscribed_names_on_observed_bus(self):
        annotations = _StubAnnotations()
        bus = TraceBus(annotations)
        bus.subscribe("forward", lambda row: None)
        fifo = bus.emitter("fifo")
        assert fifo is not NOOP_EMITTER
        fifo()
        # The probe settles the lazy accumulators but records nothing.
        assert annotations.settles == 1
        assert annotations.snapshots == 0
        assert bus.events_published == 0

    def test_named_only_channel_skips_sinks_and_probe(self):
        annotations = _StubAnnotations()
        bus = TraceBus(annotations)
        buffer = TraceBuffer()
        bus.attach_sink(buffer)
        emit = bus.emitter("mem_sram", to_sinks=False)
        assert emit is NOOP_EMITTER  # no tuple subscriber for the name
        rows = []
        bus2 = TraceBus(_StubAnnotations())
        bus2.subscribe("mem_sram", rows.append)
        emit2 = bus2.emitter("mem_sram", to_sinks=False)
        emit2()
        assert len(rows) == 1

    def test_emitters_are_cached_per_name(self):
        bus = TraceBus(_StubAnnotations())
        bus.subscribe("forward", lambda row: None)
        assert bus.emitter("forward") is bus.emitter("forward")

    def test_subscribed_names_and_has_subscribers(self):
        bus = TraceBus(_StubAnnotations())
        bus.subscribe("forward", lambda row: None)
        assert bus.subscribed_names() == ("forward",)
        assert bus.has_subscribers("forward")
        assert not bus.has_subscribers("fifo")
        assert bus.has_any_subscriber()


class TestSampling:
    def test_sampled_handler_deterministic_stride(self):
        bus = TraceBus(_StubAnnotations())
        rows = []
        bus.subscribe("forward", rows.append, sample=3)
        emit = bus.emitter("forward")
        for _ in range(10):
            emit()
        # First event in, then every 3rd: occurrences 1, 4, 7, 10.
        assert [row[0] for row in rows] == [1, 4, 7, 10]

    def test_bad_sample_stride_rejected(self):
        bus = TraceBus(_StubAnnotations())
        with pytest.raises(TraceError):
            bus.subscribe("forward", lambda row: None, sample=0)

    def test_sampling_never_applies_to_wildcard_sinks(self):
        bus = TraceBus(_StubAnnotations())
        rows = []
        buffer = TraceBuffer()
        bus.subscribe("forward", rows.append, sample=4)
        bus.attach_sink(buffer)
        emit = bus.emitter("forward")
        for _ in range(8):
            emit()
        # The legacy emit(TraceEvent) sink saw every event ...
        assert len(buffer.events) == 8
        # ... while the sampled tuple handler saw 1/4 of them.
        assert len(rows) == 2

    def test_sampling_does_not_move_the_snapshot_grid(self):
        # The row is snapshotted at EVERY event of a subscribed name;
        # a sampled handler merely skips dispatch.  The rows it does
        # see are therefore identical to an unsampled subscriber's at
        # the same occurrences.
        annotations = _StubAnnotations()
        bus = TraceBus(annotations)
        sampled = []
        bus.subscribe("forward", sampled.append, sample=2)
        emit = bus.emitter("forward")
        for _ in range(6):
            emit()
        assert annotations.snapshots == 6
        assert [row[0] for row in sampled] == [1, 3, 5]

    def test_sampling_does_not_change_settle_points(self):
        # Settle probes for unsubscribed primary names fire exactly as
        # they do with an unsampled subscriber: the annotation read
        # grid is part of the run's float identity.
        annotations = _StubAnnotations()
        bus = TraceBus(annotations)
        bus.subscribe("forward", lambda row: None, sample=100)
        fifo = bus.emitter("fifo")
        assert fifo is not NOOP_EMITTER
        for _ in range(5):
            fifo()
        assert annotations.settles == 5
        assert annotations.snapshots == 0

    def test_sampled_and_full_handlers_coexist(self):
        bus = TraceBus(_StubAnnotations())
        full, sampled = [], []
        bus.subscribe("forward", full.append)
        bus.subscribe("forward", sampled.append, sample=5)
        emit = bus.emitter("forward")
        for _ in range(10):
            emit()
        assert len(full) == 10
        assert len(sampled) == 2
        assert bus.events_published == 10

    def test_sampled_run_results_identical(self):
        # End to end: a run observed through a sampled subscription is
        # numerically identical to one observed at full rate.
        full_run = SimulationRun(quick_config())
        full_run.bus.subscribe("forward", lambda row: None)
        full_result = full_run.run()
        sampled_rows = []
        sampled_run = SimulationRun(quick_config())
        sampled_run.bus.subscribe("forward", sampled_rows.append, sample=16)
        sampled_result = sampled_run.run()
        import dataclasses

        assert dataclasses.asdict(sampled_result.totals) == (
            dataclasses.asdict(full_result.totals)
        )
        assert sampled_run.bus.events_published == (
            full_run.bus.events_published
        )
        assert 0 < len(sampled_rows) < full_run.bus.events_published


class TestChannelStats:
    def test_counting_off_yields_no_stats(self):
        bus = TraceBus(_StubAnnotations(), counting=False)
        bus.subscribe("forward", lambda row: None)
        bus.emitter("forward")()
        assert bus.channel_stats() == {}

    def test_published_delivered_shed_accounting(self):
        bus = TraceBus(_StubAnnotations(), counting=True)
        bus.subscribe("forward", lambda row: None)
        bus.subscribe("forward", lambda row: None, sample=4)
        emit = bus.emitter("forward")
        for _ in range(8):
            emit()
        stats = bus.channel_stats()
        assert stats["forward"]["published"] == 8
        # 8 full deliveries + 2 sampled deliveries (events 1 and 5).
        assert stats["forward"]["delivered"] == 10
        assert stats["forward"]["shed"] == 6

    def test_settle_channels_count_published_only(self):
        bus = TraceBus(_StubAnnotations(), counting=True)
        bus.subscribe("forward", lambda row: None)
        fifo = bus.emitter("fifo")
        for _ in range(3):
            fifo()
        stats = bus.channel_stats()
        assert stats["fifo"] == {"published": 3, "delivered": 0, "shed": 0}

    def test_noop_channels_never_counted(self):
        bus = TraceBus(_StubAnnotations(), counting=True)
        emit = bus.emitter("forward")
        assert emit is NOOP_EMITTER
        emit()
        assert bus.channel_stats() == {}

    def test_counting_does_not_change_events_published(self):
        for counting in (False, True):
            bus = TraceBus(_StubAnnotations(), counting=counting)
            bus.subscribe("forward", lambda row: None)
            emit = bus.emitter("forward")
            for _ in range(5):
                emit()
            assert bus.events_published == 5

    def test_env_var_disables_counting(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_COUNTERS", "off")
        bus = TraceBus(_StubAnnotations())
        assert bus.counting is False
        monkeypatch.delenv("REPRO_OBS_COUNTERS")
        assert TraceBus(_StubAnnotations()).counting is True


class TestChipWiring:
    def test_unobserved_run_publishes_nothing(self):
        run = SimulationRun(quick_config())
        run.run()
        assert run.bus.events_published == 0
        assert not run.bus.has_any_subscriber()

    def test_tuple_subscriber_counts_forward_events(self):
        rows = []
        run = SimulationRun(quick_config())
        run.bus.subscribe("forward", rows.append)
        result = run.run()
        assert len(rows) == result.totals.forwarded_packets
        assert run.bus.events_published == len(rows)
        # Rows carry the cumulative forward counter as total_pkt.
        assert [row[3] for row in rows] == list(range(1, len(rows) + 1))

    def test_wildcard_sink_equivalent_to_legacy_sinks(self):
        buffer = TraceBuffer()
        result = run_simulation(quick_config(), sinks=[buffer])
        names = {e.name for e in buffer.events}
        assert names <= {"fifo", "forward"}
        forwards = [e for e in buffer.events if e.name == "forward"]
        assert len(forwards) == result.totals.forwarded_packets

    def test_add_sink_after_start_raises(self):
        run = SimulationRun(quick_config())
        run.run()
        with pytest.raises(TraceError):
            run.chip.add_sink(TraceBuffer())

    def test_pipeline_events_only_when_configured(self):
        buffer = TraceBuffer()
        run_simulation(
            quick_config(pipeline_events="chunk"), sinks=[buffer]
        )
        assert any(e.name.endswith("_pipeline") for e in buffer.events)
        buffer2 = TraceBuffer()
        run_simulation(quick_config(), sinks=[buffer2])
        assert not any(e.name.endswith("_pipeline") for e in buffer2.events)

    def test_mem_events_are_named_only(self):
        # A wildcard sink never sees mem_* channels ...
        buffer = TraceBuffer()
        run_simulation(quick_config(), sinks=[buffer])
        assert not any(e.name.startswith("mem_") for e in buffer.events)
        # ... but a named subscriber receives one row per request.
        rows = []
        run = SimulationRun(quick_config())
        run.bus.subscribe("mem_sdram", rows.append)
        run.run()
        assert len(rows) == run.chip.sdram.requests
        assert len(rows) > 0

    def test_observation_does_not_change_totals(self):
        unobserved = run_simulation(quick_config())
        rows = []
        run = SimulationRun(quick_config())
        run.bus.subscribe("forward", rows.append)
        run.bus.subscribe("mem_sram", lambda row: None)
        observed = run.run()
        assert observed.totals.forwarded_packets == (
            unobserved.totals.forwarded_packets
        )
        assert observed.totals.offered_packets == (
            unobserved.totals.offered_packets
        )

    def test_snapshot_matches_make_event(self):
        run = SimulationRun(quick_config())
        provider = run.chip.annotations
        assert isinstance(provider, AnnotationProvider)
        event = provider.make_event("forward")
        assert isinstance(event, TraceEvent)
        row = provider.snapshot()
        assert event.as_tuple()[1:] == row
