"""Tests for the traffic substrate: packets, sizes, arrivals, diurnal."""

import io
import random

import pytest

from repro.errors import TrafficError
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams
from repro.traffic.arrivals import (
    ConstantBitRate,
    MmppProcess,
    PoissonProcess,
    arrival_process,
)
from repro.traffic.diurnal import DiurnalModel
from repro.traffic.generator import TrafficSource
from repro.traffic.packet import FlowPool, Packet
from repro.traffic.sampler import SegmentSpec, TrafficSampler
from repro.traffic.sizes import IMIX_CLASSIC, PacketSizeMix
from repro.traffic.trace_file import read_packet_trace, write_packet_trace


def make_packet(seq=0, size=500, **kw):
    defaults = dict(
        seq=seq,
        arrival_ps=1000,
        size_bytes=size,
        src_ip=0x0A000001,
        dst_ip=0x0A000002,
        src_port=1234,
        dst_port=80,
        protocol=6,
        flow_id=0,
        input_port=3,
        payload_seed=42,
    )
    defaults.update(kw)
    return Packet(**defaults)


class TestPacket:
    def test_size_bits(self):
        assert make_packet(size=100).size_bits == 800

    def test_bad_sizes_rejected(self):
        with pytest.raises(TrafficError):
            make_packet(size=10)
        with pytest.raises(TrafficError):
            make_packet(size=100_000)

    def test_payload_deterministic_and_sized(self):
        packet = make_packet(size=200)
        payload = packet.payload()
        assert len(payload) == 180  # minus 20-byte IP header
        assert payload == packet.payload()

    def test_payload_differs_across_packets(self):
        a = make_packet(seq=1).payload()
        b = make_packet(seq=2).payload()
        assert a != b

    def test_minimum_packet_has_small_payload(self):
        assert make_packet(size=40).payload_bytes_len == 20

    def test_five_tuple(self):
        packet = make_packet()
        assert packet.five_tuple == (0x0A000001, 0x0A000002, 1234, 80, 6)


class TestFlowPool:
    def test_draws_within_range(self):
        pool = FlowPool(32, 0.9, random.Random(1))
        for _ in range(200):
            assert 0 <= pool.draw() < 32

    def test_zipf_skews_popular_flows(self):
        pool = FlowPool(64, 1.0, random.Random(2))
        draws = [pool.draw() for _ in range(4000)]
        top = sum(1 for d in draws if d < 8)
        assert top > 1200  # top 1/8 of flows gets far more than 1/8 of draws

    def test_uniform_when_zipf_zero(self):
        pool = FlowPool(16, 0.0, random.Random(3))
        draws = [pool.draw() for _ in range(8000)]
        counts = [draws.count(k) for k in range(16)]
        assert min(counts) > 300

    def test_endpoints_stable(self):
        pool = FlowPool(8, 0.5, random.Random(4))
        assert pool.endpoints(3) == pool.endpoints(3)

    def test_validation(self):
        with pytest.raises(TrafficError):
            FlowPool(0, 0.5, random.Random(1))
        with pytest.raises(TrafficError):
            FlowPool(4, -1.0, random.Random(1))


class TestSizeMix:
    def test_normalization_and_mean(self):
        mix = PacketSizeMix([(100, 1), (300, 1)])
        assert mix.mean_bytes == 200
        assert mix.mean_bits == 1600

    def test_imix_mean(self):
        assert IMIX_CLASSIC.mean_bytes == pytest.approx(340.33, abs=0.01)

    def test_samples_follow_weights(self):
        mix = PacketSizeMix([(40, 9), (1500, 1)])
        rng = random.Random(5)
        samples = [mix.sample(rng) for _ in range(5000)]
        small = sum(1 for s in samples if s == 40)
        assert 0.85 < small / 5000 < 0.95

    def test_validation(self):
        with pytest.raises(TrafficError):
            PacketSizeMix([])
        with pytest.raises(TrafficError):
            PacketSizeMix([(0, 1)])
        with pytest.raises(TrafficError):
            PacketSizeMix([(40, -1)])


class TestArrivals:
    def test_cbr_exact_rate(self):
        process = ConstantBitRate(1e9, 8000.0)
        assert process.mean_rate_pps == pytest.approx(125_000)
        rng = random.Random(0)
        assert process.next_gap_ps(rng) == process.next_gap_ps(rng) == 8_000_000

    @pytest.mark.parametrize("cls", [PoissonProcess, MmppProcess])
    def test_long_run_rate_matches_target(self, cls):
        process = cls(1e9, 2722.7)
        rng = random.Random(11)
        n = 60_000
        total = sum(process.next_gap_ps(rng) for _ in range(n))
        measured_pps = n / (total / 1e12)
        assert measured_pps == pytest.approx(process.mean_rate_pps, rel=0.05)

    def test_mmpp_rates_bracket_mean(self):
        process = MmppProcess(1e9, 8000.0, burst_ratio=4.0, burst_fraction=0.3)
        assert process.quiet_rate_pps < process.mean_rate_pps < process.burst_rate_pps
        assert process.burst_rate_pps == pytest.approx(
            4 * process.quiet_rate_pps
        )

    def test_mmpp_validation(self):
        with pytest.raises(TrafficError):
            MmppProcess(1e9, 8000.0, burst_ratio=1.0)
        with pytest.raises(TrafficError):
            MmppProcess(1e9, 8000.0, burst_fraction=1.0)

    def test_registry(self):
        process = arrival_process("poisson", 1e9, 8000.0)
        assert isinstance(process, PoissonProcess)
        with pytest.raises(TrafficError):
            arrival_process("pareto", 1e9, 8000.0)

    def test_invalid_load_rejected(self):
        with pytest.raises(TrafficError):
            PoissonProcess(0, 8000.0)


class TestDiurnal:
    def test_base_rate_peaks_at_peak_hour(self):
        model = DiurnalModel(peak_hour=14.0)
        peak = model.base_rate_bps(14 * 3600)
        night = model.base_rate_bps(3 * 3600)
        assert peak > 5 * night
        assert peak == pytest.approx(model.peak_bps, rel=0.15)

    def test_sample_day_bucket_ordering(self):
        model = DiurnalModel()
        buckets = model.sample_day(bucket_s=3600.0, samples_per_bucket=10)
        assert len(buckets) == 24
        for bucket in buckets:
            assert bucket.min_bps <= bucket.med_bps <= bucket.max_bps

    def test_bucket_labels(self):
        model = DiurnalModel()
        buckets = model.sample_day(bucket_s=1800.0, samples_per_bucket=2,
                                   start_s=9 * 3600, end_s=11 * 3600)
        assert buckets[0].label == "09:00"
        assert buckets[1].label == "09:30"

    def test_percentile_rates_monotone(self):
        model = DiurnalModel()
        p10 = model.percentile_rate(10)
        p50 = model.percentile_rate(50)
        p97 = model.percentile_rate(97)
        assert p10 < p50 < p97

    def test_validation(self):
        with pytest.raises(TrafficError):
            DiurnalModel(night_bps=0)
        with pytest.raises(TrafficError):
            DiurnalModel(peak_hour=25)


class TestSampler:
    def test_levels_ordered(self):
        sampler = TrafficSampler(DiurnalModel())
        low = sampler.level_load_bps("low")
        med = sampler.level_load_bps("med")
        high = sampler.level_load_bps("high")
        assert low < med < high
        assert high == pytest.approx(sampler.npu_scale_to_bps)

    def test_unknown_level_rejected(self):
        sampler = TrafficSampler(DiurnalModel())
        with pytest.raises(TrafficError):
            sampler.level_load_bps("peak")

    def test_all_segments(self):
        segments = TrafficSampler(DiurnalModel()).all_segments()
        assert set(segments) == {"low", "med", "high"}


class TestTrafficSource:
    def _run_source(self, spec, stop_us=2000):
        sim = Simulator()
        received = []
        source = TrafficSource.from_spec(
            sim,
            lambda port, packet: received.append((port, packet)),
            spec,
            rng_streams=RngStreams(9),
        )
        source.start(stop_ps=stop_us * 1_000_000)
        sim.run()
        return source, received

    def test_packets_delivered_with_increasing_seq(self):
        spec = SegmentSpec(level="med", offered_load_bps=1e9, process="cbr")
        source, received = self._run_source(spec)
        assert len(received) > 100
        seqs = [packet.seq for _, packet in received]
        assert seqs == sorted(seqs)
        assert source.offered_packets == len(received)

    def test_ports_in_range_and_flow_sticky(self):
        spec = SegmentSpec(level="med", offered_load_bps=1e9, process="poisson")
        _, received = self._run_source(spec)
        port_by_flow = {}
        for port, packet in received:
            assert 0 <= port < 16
            previous = port_by_flow.setdefault(packet.flow_id, port)
            assert previous == port

    def test_offered_load_measured(self):
        spec = SegmentSpec(level="med", offered_load_bps=1e9, process="cbr")
        source, _ = self._run_source(spec, stop_us=4000)
        assert source.offered_load_bps == pytest.approx(1e9, rel=0.1)

    def test_cannot_start_twice(self):
        sim = Simulator()
        spec = SegmentSpec(level="med", offered_load_bps=1e9, process="cbr")
        source = TrafficSource.from_spec(sim, lambda p, k: None, spec)
        source.start()
        with pytest.raises(TrafficError):
            source.start()


class TestPacketTraceFile:
    def test_round_trip(self):
        packets = [make_packet(seq=k, size=100 + k) for k in range(10)]
        buffer = io.StringIO()
        count = write_packet_trace(packets, buffer)
        assert count == 10
        buffer.seek(0)
        back = list(read_packet_trace(buffer))
        assert back == packets

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "packets.csv")
        packets = [make_packet(seq=k) for k in range(5)]
        write_packet_trace(packets, path)
        assert list(read_packet_trace(path)) == packets
