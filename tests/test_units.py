"""Tests for unit conversions."""

import pytest

from repro import units


def test_frequency_conversions():
    assert units.mhz(600) == 600e6
    assert units.ghz(1.4) == 1.4e9
    assert units.hz_to_mhz(600e6) == 600.0


def test_rate_conversions():
    assert units.mbps(1000) == 1e9
    assert units.gbps(2.4) == 2.4e9
    assert units.bps_to_mbps(1e9) == 1000.0


def test_time_conversions_round_trip():
    assert units.us_to_ps(1.5) == 1_500_000
    assert units.ns_to_ps(2.25) == 2250
    assert units.s_to_ps(0.001) == 1_000_000_000
    assert units.ps_to_us(1_500_000) == 1.5
    assert units.ps_to_s(1_000_000_000_000) == 1.0


def test_period_ps():
    assert units.period_ps(600e6) == 1667
    assert units.period_ps(1e12) == 1
    with pytest.raises(ValueError):
        units.period_ps(0)


def test_period_ps_never_below_one():
    assert units.period_ps(5e12) == 1


def test_cycles_time_round_trip():
    freq = 600e6
    for cycles in (1, 10, 20_000, 8_000_000):
        ps = units.cycles_to_ps(cycles, freq)
        back = units.ps_to_cycles(ps, freq)
        assert back == pytest.approx(cycles, rel=1e-9)


def test_transmit_time():
    # 1000 bytes at 1 Gbps = 8 us
    assert units.transmit_time_ps(1000, 1e9) == 8_000_000
    with pytest.raises(ValueError):
        units.transmit_time_ps(100, 0)


def test_bytes_to_bits():
    assert units.bytes_to_bits(40) == 320
