"""Tests for the VF ladder (the paper's Figure 5)."""

import pytest

from repro.config import NpuConfig
from repro.dvs.vf_table import VfTable
from repro.errors import ConfigError
from repro.units import mhz


def default_table():
    return VfTable.from_config(NpuConfig())


def test_paper_ladder_points():
    table = default_table()
    assert len(table) == 5
    assert [p.freq_mhz for p in table.points] == [600, 550, 500, 450, 400]
    assert [p.vdd for p in table.points] == [1.3, 1.25, 1.2, 1.15, 1.1]


def test_figure5_thresholds():
    table = default_table()
    thresholds = [
        round(table.traffic_threshold_mbps(level, 1000.0))
        for level in range(len(table))
    ]
    # The paper's row: 1000, 916, 833, 750, 666 (rounded).
    assert thresholds == [1000, 917, 833, 750, 667]


def test_scaling_table_rows():
    rows = default_table().scaling_table(1000.0)
    assert rows[0] == (600.0, 1.3, 1000.0)
    assert rows[-1][0] == 400.0
    assert rows[-1][2] == pytest.approx(666.67, abs=0.01)


def test_step_navigation_clamps():
    table = default_table()
    assert table.step_up(0) == 0
    assert table.step_down(0) == 1
    bottom = len(table) - 1
    assert table.step_down(bottom) == bottom
    assert table.step_up(bottom) == bottom - 1


def test_top_bottom():
    table = default_table()
    assert table.top.freq_hz == mhz(600)
    assert table.bottom.freq_hz == mhz(400)


def test_degenerate_single_point_ladder():
    table = VfTable(mhz(600), mhz(600), mhz(50), 1.3, 1.3)
    assert len(table) == 1
    assert table.top == table.bottom


def test_invalid_ladders_rejected():
    with pytest.raises(ConfigError):
        VfTable(mhz(400), mhz(600), mhz(50), 1.3, 1.1)  # min > max
    with pytest.raises(ConfigError):
        VfTable(mhz(600), mhz(400), mhz(70), 1.3, 1.1)  # step misfit
    with pytest.raises(ConfigError):
        default_table().traffic_threshold_mbps(0, -5)
