#!/usr/bin/env python3
"""Baseline-gated mypy lane for the typed surface.

Runs mypy over the ``[tool.mypy]`` surface (``src/repro/analysis`` +
``src/repro/loc``) and fails only on errors in files *not* grandfathered
by ``tools/mypy-baseline.txt``.  The baseline is a burn-down list: each
non-comment line is a path prefix (relative to the repo root) whose
errors are tolerated until that module is typed.  The new
static-analysis subsystem (``src/repro/analysis/lint``) is deliberately
NOT in the baseline — it must stay mypy-clean from day one.

Exit codes: 0 clean (or mypy unavailable — the CI lane installs it,
local runs without it just warn), 1 new errors, 2 runner failure.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
BASELINE = Path(__file__).resolve().parent / "mypy-baseline.txt"


def load_baseline() -> list:
    prefixes = []
    for line in BASELINE.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            prefixes.append(line)
    return prefixes


def main() -> int:
    try:
        proc = subprocess.run(
            [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
            cwd=ROOT,
            capture_output=True,
            text=True,
            check=False,
        )
    except OSError as exc:
        print(f"typecheck: failed to launch mypy: {exc}", file=sys.stderr)
        return 2
    if "No module named mypy" in proc.stderr:
        print(
            "typecheck: mypy is not installed; skipping (CI installs it)",
            file=sys.stderr,
        )
        return 0

    prefixes = load_baseline()
    new_errors = []
    grandfathered = 0
    for line in proc.stdout.splitlines():
        # mypy error lines look like ``path:line: error: message  [code]``.
        if ": error:" not in line:
            continue
        path = line.split(":", 1)[0].replace("\\", "/")
        if any(path.startswith(prefix) for prefix in prefixes):
            grandfathered += 1
        else:
            new_errors.append(line)

    for line in new_errors:
        print(line)
    print(
        f"typecheck: {len(new_errors)} new error(s), "
        f"{grandfathered} grandfathered (tools/mypy-baseline.txt)",
        file=sys.stderr,
    )
    return 1 if new_errors else 0


if __name__ == "__main__":
    sys.exit(main())
